//! Vector-clock happens-before race detection.
//!
//! [`RaceTracker`] is the observational core behind
//! `RunConfig::with_race_detector()`. Per-task clocks live in the task
//! table's `race_clock` SoA column (so they share the engine's data
//! layout and cost nothing when disarmed); this module owns the
//! per-sync-object clocks and the modeled shared-variable access
//! history.
//!
//! The model is the uniform release/acquire discipline every sync
//! boundary in the engine already follows:
//!
//! - a **release** into a channel (futex wake, lock unlock, sync-flag
//!   set, epoll post, a waiter publishing its history before parking)
//!   joins the releasing task's clock into the channel clock;
//! - an **acquire** from a channel (waking from a futex, lock acquired,
//!   a flag spin satisfied, epoll readiness delivered) joins the channel
//!   clock into the acquiring task's clock;
//! - every hook ticks the acting task's own component, so distinct
//!   operations by one task are distinct clock points.
//!
//! Two accesses to the same modeled shared variable race iff neither
//! clock snapshot is `<=` the other — exactly happens-before-graph
//! reachability (pinned by the proptest oracle in this module's tests).
//! The only race-*checked* state is plain (non-atomic) flag words
//! (`SyncRegistry::create_flag_plain`); every other modeled access is
//! either task-private or reached only through the channels above, so
//! golden workloads are race-free by construction and the detector
//! certifies it rather than assumes it.

use oversub_locks::LockKey;
use oversub_simcore::{SimTime, VClock};
use oversub_task::FlagId;
use std::collections::{BTreeMap, BTreeSet};

/// A synchronization channel: one release/acquire edge carrier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Chan {
    /// A futex bucket (mutex park/wake, condvar, barrier, semaphore).
    Futex(u64),
    /// A user-level lock (mutex/spinlock/semaphore acquire-release).
    Lock(LockKey),
    /// A sync flag word (release on set, acquire on satisfied spin).
    Flag(usize),
    /// An epoll instance (post → woken waiter).
    Epoll(usize),
}

/// One recorded access to a plain shared variable.
#[derive(Clone, Debug)]
pub struct Access {
    /// Acting task.
    pub task: usize,
    /// The task's program name (site label).
    pub program: String,
    /// Operation: `"read"` (spin load) or `"write(v)"` (store).
    pub op: String,
    /// Simulated time of the access.
    pub at: SimTime,
    /// Clock snapshot at the access (after the tick).
    pub clock: VClock,
}

/// A confirmed data race: two accesses unordered by happens-before.
#[derive(Clone, Debug)]
pub struct RaceFinding {
    /// The task whose access completed the race (diagnostic anchor).
    pub task: usize,
    /// Human detail naming both sites, clock provenance, and the sync
    /// edge that would have ordered them.
    pub detail: String,
}

#[derive(Default)]
struct VarState {
    write: Option<Access>,
    /// Reads since the last write, at most one per task (a newer read by
    /// the same task supersedes its older one in program order).
    reads: Vec<Access>,
}

/// The happens-before tracker. One per engine when armed.
#[derive(Default)]
pub struct RaceTracker {
    chans: BTreeMap<Chan, VClock>,
    vars: BTreeMap<usize, VarState>,
    /// Plain flags already reported — one canonical finding per
    /// variable keeps the racy micro-workload's output deterministic
    /// and readable.
    reported: BTreeSet<usize>,
    findings: Vec<RaceFinding>,
}

impl RaceTracker {
    /// Fresh tracker.
    pub fn new() -> Self {
        RaceTracker::default()
    }

    /// Drain findings accumulated since the last call.
    pub fn take_findings(&mut self) -> Vec<RaceFinding> {
        std::mem::take(&mut self.findings)
    }

    /// Release edge: `tid` publishes its history into `chan`.
    pub fn release(&mut self, chan: Chan, tid: usize, clock: &mut VClock) {
        clock.tick(tid);
        self.chans.entry(chan).or_default().join(clock);
    }

    /// Acquire edge: `tid` adopts everything released into `chan`.
    pub fn acquire(&mut self, chan: Chan, tid: usize, clock: &mut VClock) {
        if let Some(c) = self.chans.get(&chan) {
            clock.join(c);
        }
        clock.tick(tid);
    }

    /// A plain-variable load by `tid`. Races iff the last write is not
    /// happens-before it.
    pub fn read_plain(
        &mut self,
        flag: FlagId,
        tid: usize,
        program: &str,
        at: SimTime,
        clock: &mut VClock,
    ) {
        clock.tick(tid);
        let access = Access {
            task: tid,
            program: program.to_string(),
            op: "read".to_string(),
            at,
            clock: clock.clone(),
        };
        let var = self.vars.entry(flag.0).or_default();
        let racy_write = var
            .write
            .as_ref()
            .filter(|w| w.task != tid && !w.clock.le(clock))
            .cloned();
        if let Some(w) = racy_write {
            self.report(flag, &w, &access);
        }
        let var = self.vars.entry(flag.0).or_default();
        var.reads.retain(|r| r.task != tid);
        var.reads.push(access);
    }

    /// A plain-variable store by `tid`. Races iff any access since the
    /// last ordered write is not happens-before it.
    pub fn write_plain(
        &mut self,
        flag: FlagId,
        tid: usize,
        program: &str,
        value: u64,
        at: SimTime,
        clock: &mut VClock,
    ) {
        clock.tick(tid);
        let access = Access {
            task: tid,
            program: program.to_string(),
            op: format!("write({value})"),
            at,
            clock: clock.clone(),
        };
        let var = self.vars.entry(flag.0).or_default();
        let mut racy: Vec<Access> = Vec::new();
        if let Some(w) = var.write.as_ref() {
            if w.task != tid && !w.clock.le(clock) {
                racy.push(w.clone());
            }
        }
        for r in &var.reads {
            if r.task != tid && !r.clock.le(clock) {
                racy.push(r.clone());
            }
        }
        for prior in racy {
            self.report(flag, &prior, &access);
        }
        let var = self.vars.entry(flag.0).or_default();
        var.reads.clear();
        var.write = Some(access);
    }

    fn report(&mut self, flag: FlagId, prior: &Access, current: &Access) {
        if !self.reported.insert(flag.0) {
            return;
        }
        let detail = format!(
            "plain flag {}: {} by task {} ({}) at {} ns races with {} by task {} ({}) at {} ns; \
             clocks {} vs {} — neither happens-before the other; no release/acquire edge \
             connects the two sites (a sync flag via WorldBuilder::flag, or a mutex around \
             both accesses, would order them)",
            flag.0,
            current.op,
            current.task,
            current.program,
            current.at.as_nanos(),
            prior.op,
            prior.task,
            prior.program,
            prior.at.as_nanos(),
            current.clock.provenance(),
            prior.clock.provenance(),
        );
        self.findings.push(RaceFinding {
            task: current.task,
            detail,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn clocks(n: usize) -> Vec<VClock> {
        (0..n).map(|_| VClock::zeroed(n)).collect()
    }

    #[test]
    fn unsynchronized_write_after_read_races_once() {
        let mut rt = RaceTracker::new();
        let mut cl = clocks(2);
        let f = FlagId(0);
        let (a, b) = cl.split_at_mut(1);
        rt.read_plain(f, 0, "spinner", SimTime::from_nanos(10), &mut a[0]);
        rt.write_plain(f, 1, "writer", 1, SimTime::from_nanos(20), &mut b[0]);
        let findings = rt.take_findings();
        assert_eq!(findings.len(), 1);
        assert!(findings[0].detail.contains("task 1 (writer)"));
        assert!(findings[0].detail.contains("task 0 (spinner)"));
        // Second racy access on the same flag: deduplicated.
        rt.read_plain(f, 0, "spinner", SimTime::from_nanos(30), &mut cl[0]);
        assert!(rt.take_findings().is_empty());
    }

    #[test]
    fn release_acquire_orders_accesses() {
        let mut rt = RaceTracker::new();
        let mut cl = clocks(2);
        let f = FlagId(0);
        let chan = Chan::Futex(64);
        let (a, b) = cl.split_at_mut(1);
        rt.write_plain(f, 0, "writer", 1, SimTime::from_nanos(10), &mut a[0]);
        rt.release(chan, 0, &mut a[0]);
        rt.acquire(chan, 1, &mut b[0]);
        rt.read_plain(f, 1, "reader", SimTime::from_nanos(20), &mut b[0]);
        assert!(rt.take_findings().is_empty(), "ordered by the channel");
    }

    #[test]
    fn same_task_accesses_never_race() {
        let mut rt = RaceTracker::new();
        let mut cl = clocks(1);
        let f = FlagId(3);
        rt.write_plain(f, 0, "solo", 1, SimTime::from_nanos(1), &mut cl[0]);
        rt.read_plain(f, 0, "solo", SimTime::from_nanos(2), &mut cl[0]);
        rt.write_plain(f, 0, "solo", 2, SimTime::from_nanos(3), &mut cl[0]);
        assert!(rt.take_findings().is_empty());
    }

    /// One step of a random sync-op schedule.
    #[derive(Clone, Debug)]
    enum Op {
        Release { task: usize, chan: u64 },
        Acquire { task: usize, chan: u64 },
        Local { task: usize },
    }

    fn op_strategy(tasks: usize, chans: u64) -> impl Strategy<Value = Op> {
        prop_oneof![
            (0..tasks, 0..chans).prop_map(|(task, chan)| Op::Release { task, chan }),
            (0..tasks, 0..chans).prop_map(|(task, chan)| Op::Acquire { task, chan }),
            (0..tasks).prop_map(|task| Op::Local { task }),
        ]
    }

    proptest! {
        /// The vector clocks implement exactly happens-before-graph
        /// reachability: for every pair of steps `i < j` in a random
        /// schedule, the snapshot ordering `C_i <= C_j` must equal
        /// reachability in the explicit HB graph (program-order edges
        /// plus every earlier release -> later acquire on the same
        /// channel).
        #[test]
        fn vector_clocks_match_reachability_oracle(
            ops in proptest::collection::vec(op_strategy(4, 3), 1..60)
        ) {
            let n_tasks = 4usize;
            let mut rt = RaceTracker::new();
            let mut cl = clocks(n_tasks);
            let mut snaps: Vec<(usize, VClock)> = Vec::new();

            // Oracle edge set, built as we replay the schedule.
            let mut edges: Vec<(usize, usize)> = Vec::new();
            let mut last_of_task: Vec<Option<usize>> = vec![None; n_tasks];
            let mut releases_on: BTreeMap<u64, Vec<usize>> = BTreeMap::new();

            for (j, op) in ops.iter().enumerate() {
                let task = match *op {
                    Op::Release { task, chan } => {
                        rt.release(Chan::Futex(chan), task, &mut cl[task]);
                        releases_on.entry(chan).or_default().push(j);
                        task
                    }
                    Op::Acquire { task, chan } => {
                        // Earlier releases on the channel happen-before
                        // this acquire.
                        if let Some(rs) = releases_on.get(&chan) {
                            for &r in rs {
                                edges.push((r, j));
                            }
                        }
                        rt.acquire(Chan::Futex(chan), task, &mut cl[task]);
                        task
                    }
                    Op::Local { task } => {
                        cl[task].tick(task);
                        task
                    }
                };
                if let Some(p) = last_of_task[task] {
                    edges.push((p, j));
                }
                last_of_task[task] = Some(j);
                snaps.push((task, cl[task].clone()));
            }

            // Naive transitive closure over the tiny DAG.
            let m = ops.len();
            let mut reach = vec![vec![false; m]; m];
            for &(a, b) in &edges {
                reach[a][b] = true;
            }
            let mut changed = true;
            while changed {
                changed = false;
                #[allow(clippy::needless_range_loop)]
                for i in 0..m {
                    for j in 0..m {
                        if !reach[i][j] {
                            continue;
                        }
                        for k in 0..m {
                            if reach[j][k] && !reach[i][k] {
                                reach[i][k] = true;
                                changed = true;
                            }
                        }
                    }
                }
            }

            for i in 0..m {
                for j in (i + 1)..m {
                    let hb = reach[i][j];
                    let clock_hb = snaps[i].1.le(&snaps[j].1);
                    prop_assert_eq!(
                        clock_hb,
                        hb,
                        "steps {} -> {}: clock order {} but graph reachability {}",
                        i, j, clock_hb, hb
                    );
                }
            }
        }
    }
}
