//! The simulation engine: composes the scheduler, futex/epoll substrate,
//! user-level locks, hardware monitoring, BWD, and PLE into a runnable
//! machine, and drives task programs through their actions in virtual time.
//!
//! The engine is a discrete-event loop. Each CPU is either idle, in VB
//! poll mode (only parked tasks queued), or running a task *segment*:
//! a span of compute / memory traversal / tight loop / busy-wait. Segments
//! end at action completion, slice expiry, BWD/PLE deschedules, spin-budget
//! expiry, or when another CPU's release grants a spun-on lock.
//!
//! Time accounting invariant: each CPU has a cursor
//! ([`oversub_sched::CpuState::accounted_until`]) that only moves forward;
//! every nanosecond between events is attributed to exactly one bucket
//! (useful / spin / kernel / idle) and, for monitored kinds, fed into the
//! core's LBR/PMC window so BWD sees exactly what ran.

use crate::config::RunConfig;
use crate::trace::{TraceKind, TraceLog};
use oversub_bwd::{Detector, Ple};
use oversub_hw::{CpuId, MemModel, NormalCodeRates};
use oversub_ksync::{EpollTable, FutexTable};
use oversub_locks::SyncRegistry;
use oversub_metrics::{LatencyHist, RunReport};
use oversub_simcore::{EventQueue, SimRng, SimTime};
use oversub_task::{Action, EpollFd, FlagId, LockId, SpinSig, Task, TaskId, TaskState};
use oversub_workloads::workload::{Workload, WorldBuilder};

/// What kind of time the current segment on a CPU is.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum RunKind {
    /// Program work (compute or memory traversal).
    Useful,
    /// Busy-waiting on a lock or flag.
    Spin(SpinSig),
    /// A bounded non-synchronization tight loop (BWD false-positive bait).
    TightLoop(SpinSig),
}

/// Why the pending per-segment event fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum SegEventKind {
    /// The work action completes.
    WorkEnd,
    /// A spin-then-park budget expires: convert to futex park.
    ParkDeadline,
    /// Indefinite spin: no scheduled end.
    None,
}

/// How a blocked task resumes when it next runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum Resume {
    /// Retry a mutex acquisition (futex-mutex wake path).
    MutexRetry(LockId),
    /// Re-acquire the mutex after a condvar wait.
    CondReacquire(LockId),
    /// Nothing more to do: the blocking action is complete.
    Simple,
    /// Consume pending epoll events, then proceed.
    EpollReady(EpollFd),
    /// I/O completed.
    Io,
}

/// Per-task continuation: what the task is in the middle of.
#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) enum Cont {
    /// Ask the program for its next action.
    Ready,
    /// A partially-executed work action (remaining unscaled nanoseconds).
    Work {
        /// The action being executed.
        action: Action,
        /// Remaining work at full speed.
        left_ns: u64,
    },
    /// Busy-waiting on a registered lock.
    SpinLock {
        /// The lock id (mutex or spinlock table, per `is_mutex`).
        lock: LockId,
        /// True: blocking-mutex table (spin-then-park kinds); false:
        /// spinlock table.
        is_mutex: bool,
        /// Loop shape.
        sig: SpinSig,
        /// Remaining spin budget before parking (None = spin forever).
        budget_left: Option<u64>,
    },
    /// Busy-waiting on a flag word.
    SpinFlag {
        /// The flag.
        flag: FlagId,
        /// Spin while the flag equals this.
        while_eq: u64,
        /// Loop shape.
        sig: SpinSig,
    },
    /// Blocked in the kernel (futex/epoll/io); `resume` runs on wake.
    Blocked(Resume),
    /// Exited.
    Done,
}

/// Discrete events.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Event {
    /// Try to schedule work on an idle CPU.
    Resched(usize),
    /// The current segment's scheduled end (work done or park deadline).
    SegEnd(usize, u64),
    /// Slice expiry for the current stint.
    Slice(usize, u64),
    /// Hardware pause-loop exit for the current spin segment.
    PleExit(usize, u64),
    /// Re-evaluate wakeup preemption on this CPU.
    PreemptCheck(usize),
    /// BWD monitoring timer.
    BwdTimer(usize),
    /// Periodic load balancing.
    Balance(usize),
    /// An I/O wait finished.
    IoDone(usize),
    /// CPU elasticity: change the online core count.
    Elastic(usize),
    /// Hard stop (max_time).
    Stop,
}

/// Safety valve against runaway simulations.
const MAX_EVENTS: u64 = 400_000_000;

/// Default cap when a workload neither exits nor sets `max_time`.
const DEFAULT_CAP: SimTime = SimTime(600 * oversub_simcore::SECS);

pub(crate) struct Engine {
    pub cfg: RunConfig,
    pub sched: oversub_sched::Scheduler,
    pub futex: FutexTable,
    pub epoll: EpollTable,
    pub sync: SyncRegistry,
    pub bwd: Detector,
    pub ple: Ple,
    pub mem: MemModel,
    pub tasks: Vec<Task>,
    pub conts: Vec<Cont>,
    pub rngs: Vec<SimRng>,
    /// Adaptive PLE window per task (doubles on each exit).
    pub ple_window: Vec<u64>,
    pub queue: EventQueue<Event>,
    /// Per-CPU epoch for stint-level events (Slice).
    pub stint_epoch: Vec<u64>,
    /// Per-CPU epoch for segment-level events (SegEnd/Continue/PleExit).
    pub seg_epoch: Vec<u64>,
    /// Per-CPU current segment kind (valid while running).
    pub run_kind: Vec<RunKind>,
    /// Per-CPU SMT speed factor captured at segment start.
    pub seg_rate: Vec<f64>,
    /// Per-CPU scheduled end of the current segment.
    pub seg_done_at: Vec<SimTime>,
    /// Per-CPU pending segment event kind.
    pub seg_event: Vec<SegEventKind>,
    /// Per-CPU pending PLE exit time, if armed.
    pub ple_exit_at: Vec<Option<SimTime>>,
    /// `(timestamp, queue seq mark)` of the most recently scheduled
    /// `Event::Resched(cpu)` per CPU. A duplicate request is coalesced
    /// into it only when both match — the mark proves no other event was
    /// scheduled in between, so the duplicate would pop immediately after
    /// its twin with identical state (see `sched_resched`).
    pub resched_pending: Vec<Option<(SimTime, u64)>>,
    /// Reference mode: classic queue, uncached picks, no coalescing.
    pub reference: bool,
    /// `OVERSUB_TRACE` progress logging (read once at construction; env
    /// lookups are too slow for the per-event hot loop).
    trace_progress: bool,
    /// `OVERSUB_CHECK` runqueue audits (read once at construction).
    check_rqs: bool,
    /// `OVERSUB_TRACE_CPU` filter (read once at construction).
    trace_cpu: Option<usize>,
    pub now: SimTime,
    pub live: usize,
    pub end_cap: SimTime,
    pub events_processed: u64,
    pub last_exit: SimTime,
    pub rates: NormalCodeRates,
    /// Ground-truth spin episodes (starts of genuine busy-waiting), for
    /// the BWD sensitivity table.
    pub spin_episodes: u64,
    /// Optional scheduling-event trace.
    pub trace: TraceLog,
}

impl Engine {
    pub(crate) fn new(cfg: RunConfig, workload: &mut dyn Workload) -> Self {
        let topo = cfg.machine.topology();
        let mem = MemModel::new(cfg.cache.clone());
        let mut sched = oversub_sched::Scheduler::new(
            topo.clone(),
            cfg.sched.clone(),
            mem.clone(),
            cfg.mech.vb,
        );
        let initial_cores = cfg.initial_cores.unwrap_or(topo.num_cpus());
        sched.set_online_count(initial_cores);

        let futex = FutexTable::new(cfg.futex_params());
        let epoll = EpollTable::new(cfg.futex_params());
        let mut world = WorldBuilder::new(initial_cores, epoll);
        workload.build(&mut world);

        let base_rng = SimRng::new(cfg.seed);
        let n = world.threads.len();
        let mut tasks = Vec::with_capacity(n);
        let mut rngs = Vec::with_capacity(n);
        let online: Vec<usize> = (0..initial_cores).collect();
        for (i, spec) in world.threads.into_iter().enumerate() {
            let cpu = spec.initial_cpu.unwrap_or(CpuId(online[i % online.len()]));
            let mut t = Task::new(TaskId(i), spec.program, cpu);
            t.footprint_bytes = spec.footprint;
            t.pinned = spec.pinned;
            t.allowed = spec.allowed;
            t.weight = spec.weight;
            if cfg.pinned && t.pinned.is_none() {
                t.pinned = Some(cpu);
            }
            tasks.push(t);
            rngs.push(base_rng.fork(i as u64 + 1));
        }

        let ncpu = topo.num_cpus();
        let end_cap = cfg.max_time.unwrap_or(DEFAULT_CAP);
        let reference =
            cfg.reference_engine || std::env::var_os("OVERSUB_REFERENCE_ENGINE").is_some();
        if reference {
            sched.set_reference_mode(true);
        }
        let mut eng = Engine {
            bwd: Detector::new(cfg.bwd()),
            ple: Ple::new(cfg.ple()),
            ple_window: vec![cfg.ple().window_ns; n],
            sched,
            futex,
            epoll: world.epoll,
            sync: world.sync,
            mem,
            conts: vec![Cont::Ready; n],
            tasks,
            rngs,
            queue: if reference {
                EventQueue::classic()
            } else {
                EventQueue::new()
            },
            resched_pending: vec![None; ncpu],
            reference,
            trace_progress: std::env::var_os("OVERSUB_TRACE").is_some(),
            check_rqs: std::env::var_os("OVERSUB_CHECK").is_some(),
            trace_cpu: std::env::var("OVERSUB_TRACE_CPU")
                .ok()
                .and_then(|v| v.parse::<usize>().ok()),
            stint_epoch: vec![0; ncpu],
            seg_epoch: vec![0; ncpu],
            run_kind: vec![RunKind::Useful; ncpu],
            seg_rate: vec![1.0; ncpu],
            seg_done_at: vec![SimTime::ZERO; ncpu],
            seg_event: vec![SegEventKind::None; ncpu],
            ple_exit_at: vec![None; ncpu],
            now: SimTime::ZERO,
            live: n,
            end_cap,
            events_processed: 0,
            last_exit: SimTime::ZERO,
            rates: NormalCodeRates::default(),
            spin_episodes: 0,
            trace: if cfg.trace {
                TraceLog::enabled()
            } else {
                TraceLog::disabled()
            },
            cfg,
        };

        // Place tasks and arm per-CPU machinery.
        for i in 0..n {
            let cpu = eng.tasks[i].last_cpu;
            eng.sched
                .enqueue_new(&mut eng.tasks, TaskId(i), cpu, SimTime::ZERO);
        }
        for c in 0..ncpu {
            eng.sched_resched(SimTime::ZERO, c);
            if eng.bwd.params.enabled {
                // Stagger timers so cores do not all fire at once.
                let phase = (c as u64 * 7_919) % eng.bwd.params.interval_ns;
                eng.queue.schedule_periodic(
                    SimTime::from_nanos(eng.bwd.params.interval_ns + phase),
                    Event::BwdTimer(c),
                );
            }
            let phase = (c as u64 * 104_729) % eng.cfg.sched.balance_interval_ns;
            eng.queue.schedule_periodic(
                SimTime::from_nanos(eng.cfg.sched.balance_interval_ns + phase),
                Event::Balance(c),
            );
        }
        for ev in eng.cfg.elastic.clone() {
            eng.queue.schedule_nocancel(ev.at, Event::Elastic(ev.cores));
        }
        if eng.cfg.max_time.is_some() {
            eng.queue.schedule_nocancel(end_cap, Event::Stop);
        }
        eng
    }

    /// Run to completion and build the report (plus the trace and the
    /// number of processed events).
    pub(crate) fn run_with_trace(
        mut self,
        workload: &dyn Workload,
        label: &str,
    ) -> (RunReport, TraceLog, u64) {
        while let Some((t, ev)) = self.queue.pop() {
            if t >= self.end_cap {
                self.now = self.end_cap;
                break;
            }
            debug_assert!(t >= self.now, "time went backwards: {t} < {}", self.now);
            self.now = t;
            self.events_processed += 1;
            if self.events_processed > MAX_EVENTS {
                break;
            }
            if self.trace_progress && self.events_processed.is_multiple_of(1_000_000) {
                eprintln!(
                    "[trace] events={}M now={} live={} ev={:?}",
                    self.events_processed / 1_000_000,
                    self.now,
                    self.live,
                    ev
                );
            }
            self.dispatch(ev);
            if self.check_rqs {
                self.audit_rqs();
            }
            if self.live == 0 {
                break;
            }
        }
        let makespan = if self.live == 0 {
            self.last_exit
        } else {
            if std::env::var_os("OVERSUB_DUMP_STALL").is_some() {
                self.dump_stall_state();
            }
            self.now
        };
        let trace = std::mem::take(&mut self.trace);
        let events = self.events_processed;
        (self.build_report(workload, label, makespan), trace, events)
    }

    /// Request an `Event::Resched(cpu)` at `at`, coalescing adjacent
    /// duplicates. A duplicate is suppressed only when a `Resched(cpu)`
    /// was already scheduled for the *same timestamp* and the queue's
    /// sequence mark has not moved since — i.e. no event of any kind was
    /// scheduled in between. Events pop in `(time, seq)` order, so an
    /// unmoved mark proves the twin would pop immediately after the
    /// covering event with no intervening handler: if the covering
    /// resched started a task the twin sees a busy CPU and returns; if it
    /// found nothing, the twin re-runs `pick_next` on bit-identical state
    /// (skip-flag expiry is idempotent within a pick round, a failed
    /// `idle_pull` is stateless, and `account_progress` at an unchanged
    /// cursor adds zero). Either way the twin is a provable no-op, so
    /// dropping it cannot perturb metrics — the golden determinism test
    /// (`tests/determinism.rs`) checks this end to end. Any suppression
    /// window wider than "strictly adjacent" is unsound: an intervening
    /// same-timestamp event (e.g. a `PreemptCheck`) can requeue a task
    /// that the twin's `idle_pull` would then steal.
    pub(crate) fn sched_resched(&mut self, at: SimTime, cpu: usize) {
        if self.reference {
            self.queue.schedule_nocancel(at, Event::Resched(cpu));
            return;
        }
        if self.resched_pending[cpu] == Some((at, self.queue.seq_mark())) {
            return;
        }
        self.queue.schedule_nocancel(at, Event::Resched(cpu));
        self.resched_pending[cpu] = Some((at, self.queue.seq_mark()));
    }

    /// Diagnostic: audit runqueue invariants (enabled via OVERSUB_CHECK).
    fn audit_rqs(&self) {
        for (i, c) in self.sched.cpus.iter().enumerate() {
            let (counter, tree, parked_region) = c.rq.audit(&self.tasks);
            if counter != tree {
                eprintln!(
                    "[audit] now={} cpu={i} counter={counter} tree_schedulable={tree} parked_region_entries={parked_region}",
                    self.now
                );
                for (vr, tid) in c.rq.entries() {
                    eprintln!(
                        "    entry vr={vr} {tid:?} state={:?} vb={} task.vruntime={}",
                        self.tasks[tid.0].state,
                        self.tasks[tid.0].vb_blocked,
                        self.tasks[tid.0].vruntime
                    );
                }
                panic!("runqueue audit failed on cpu {i}");
            }
        }
    }

    /// Diagnostic: print why a run ended with live tasks (stall analysis).
    fn dump_stall_state(&self) {
        eprintln!("[stall] live={} now={}", self.live, self.now);
        for (i, t) in self.tasks.iter().enumerate() {
            if self.conts[i] != Cont::Done {
                eprintln!(
                    "  task {i}: state={:?} vb={} skip={} cpu={:?} cont={:?} blocked_on_futex={}",
                    t.state,
                    t.vb_blocked,
                    t.bwd_skip,
                    t.last_cpu,
                    self.conts[i],
                    self.futex.is_blocked(TaskId(i)),
                );
            }
        }
        for (i, c) in self.sched.cpus.iter().enumerate() {
            eprintln!(
                "  cpu {i}: current={:?} sched={} parked={} online={}",
                c.current,
                c.rq.nr_schedulable(),
                c.rq.nr_vb_parked(),
                self.sched.online[i]
            );
        }
        for (i, l) in self.sync.spinlocks.iter().enumerate() {
            if l.holder().is_some() || l.granted().is_some() || l.num_waiters() > 0 {
                eprintln!(
                    "  spinlock {i}: holder={:?} granted={:?} waiters={:?}",
                    l.holder(),
                    l.granted(),
                    l.waiters()
                );
            }
        }
    }

    fn dispatch(&mut self, ev: Event) {
        if let Some(n) = self.trace_cpu {
            let touches = match ev {
                Event::Resched(c)
                | Event::SegEnd(c, _)
                | Event::Slice(c, _)
                | Event::PleExit(c, _)
                | Event::PreemptCheck(c)
                | Event::BwdTimer(c)
                | Event::Balance(c) => c == n,
                _ => true,
            };
            if touches {
                eprintln!(
                    "[cpu{n}] now={} ev={:?} current={:?} sched={} live={}",
                    self.now,
                    ev,
                    self.sched.cpus[n].current,
                    self.sched.cpus[n].rq.nr_schedulable(),
                    self.live
                );
            }
        }
        match ev {
            Event::Resched(c) => self.on_resched(c),
            Event::SegEnd(c, e) => self.on_seg_end(c, e),
            Event::Slice(c, e) => self.on_slice(c, e),
            Event::PleExit(c, e) => self.on_ple_exit(c, e),
            Event::PreemptCheck(c) => self.on_preempt_check(c),
            Event::BwdTimer(c) => self.on_bwd_timer(c),
            Event::Balance(c) => self.on_balance(c),
            Event::IoDone(t) => self.on_io_done(t),
            Event::Elastic(n) => self.on_elastic(n),
            Event::Stop => { /* handled by end_cap check */ }
        }
    }

    // ---------------------------------------------------------------
    // Accounting
    // ---------------------------------------------------------------

    /// Attribute the span since the CPU's cursor up to `to`, according to
    /// what is running there. Feeds the LBR/PMC window.
    pub(crate) fn account_progress(&mut self, cpu: usize, to: SimTime) {
        let cur = self.sched.cpus[cpu].accounted_until;
        if to <= cur {
            return;
        }
        let span = to - cur;
        match self.sched.cpus[cpu].current {
            None => {
                self.sched.cpus[cpu].time.idle_ns += span;
            }
            Some(tid) => match self.run_kind[cpu] {
                RunKind::Useful => {
                    self.sched.cpus[cpu].time.useful_ns += span;
                    self.tasks[tid.0].stats.exec_ns += span;
                    let salt = self.tasks[tid.0].addr_salt;
                    let rates = self.rates;
                    self.sched.cpus[cpu]
                        .hw
                        .note_normal_execution(span, &rates, salt);
                }
                RunKind::Spin(sig) => {
                    self.sched.cpus[cpu].time.spin_ns += span;
                    self.tasks[tid.0].stats.spin_ns += span;
                    let iters = span / sig.iter_ns.max(1);
                    self.sched.cpus[cpu].hw.note_spin(
                        sig.branch_from,
                        sig.branch_to,
                        iters.max(1),
                        sig.instr_per_iter,
                    );
                }
                RunKind::TightLoop(sig) => {
                    // Program work, but with a spin-shaped LBR footprint.
                    self.sched.cpus[cpu].time.useful_ns += span;
                    self.tasks[tid.0].stats.exec_ns += span;
                    let iters = span / sig.iter_ns.max(1);
                    self.sched.cpus[cpu].hw.note_spin(
                        sig.branch_from,
                        sig.branch_to,
                        iters.max(1),
                        sig.instr_per_iter,
                    );
                }
            },
        }
        self.sched.cpus[cpu].accounted_until = to;
    }

    /// Charge kernel time starting at the cursor.
    pub(crate) fn charge_kernel(&mut self, cpu: usize, span: u64) {
        self.sched.cpus[cpu].time.kernel_ns += span;
        let cur = self.sched.cpus[cpu].accounted_until;
        self.sched.cpus[cpu].accounted_until = cur + span;
    }

    /// Charge useful (user-space) time starting at the cursor.
    pub(crate) fn charge_useful(&mut self, cpu: usize, span: u64) {
        if span == 0 {
            return;
        }
        self.sched.cpus[cpu].time.useful_ns += span;
        if let Some(tid) = self.sched.cpus[cpu].current {
            self.tasks[tid.0].stats.exec_ns += span;
        }
        let cur = self.sched.cpus[cpu].accounted_until;
        self.sched.cpus[cpu].accounted_until = cur + span;
    }

    // ---------------------------------------------------------------
    // CPU scheduling events
    // ---------------------------------------------------------------

    pub(crate) fn on_resched(&mut self, cpu: usize) {
        if self.sched.cpus[cpu].current.is_some() {
            return; // already busy; preemption is a separate path
        }
        self.account_progress(cpu, self.now);
        if !self.sched.online[cpu] {
            return;
        }
        let mut t = self.now;
        let mut tried_steal_for_skip = false;
        loop {
            match self.sched.pick_next(&mut self.tasks, CpuId(cpu)) {
                oversub_sched::Pick::Run(tid, forced) => {
                    self.trace.record(t, cpu, tid, TraceKind::Run);
                    if forced && !tried_steal_for_skip {
                        // Every schedulable task here is a skip-flagged
                        // spinner. Before burning another detection window
                        // on one of them, try to pull real work from a
                        // busier core (normal idle balancing composed with
                        // BWD's skip flags).
                        tried_steal_for_skip = true;
                        let (mig, cost) = self.sched.idle_pull(&mut self.tasks, CpuId(cpu), t);
                        if let Some(m) = mig {
                            self.trace.record(t, m.to.0, m.task, TraceKind::Migrate);
                            self.charge_kernel(cpu, cost);
                            t += cost;
                            continue;
                        }
                    }
                    let switched = self.sched.cpus[cpu].last_ran != Some(tid);
                    let cost = self.sched.start(&mut self.tasks, CpuId(cpu), tid, t);
                    self.stint_epoch[cpu] += 1;
                    self.charge_kernel(cpu, cost);
                    if switched {
                        // LBR state is saved/restored per task (as Linux
                        // does for perf LBR), so the monitoring window
                        // starts clean for the incoming task.
                        self.sched.cpus[cpu].hw.new_window();
                    }
                    let start_t = t + cost;
                    // Arm the stint's slice timer.
                    let slice = self.sched.slice_for(CpuId(cpu));
                    self.queue
                        .schedule(start_t + slice, Event::Slice(cpu, self.stint_epoch[cpu]));
                    self.sched.cpus[cpu].time.context_switches += 1;
                    self.advance_task(cpu, start_t);
                    return;
                }
                oversub_sched::Pick::VbPoll(_) => {
                    // Semi-idle: parked tasks rotate through flag checks.
                    // The rotation cost is charged lazily when a wake
                    // arrives (see `wake_resched_delay`); the CPU idles.
                    return;
                }
                oversub_sched::Pick::Idle => {
                    // Idle balance: try to steal, and if it succeeds, run
                    // the stolen task *within this event* — deferring to a
                    // later event would let other idle CPUs steal it back
                    // and ping-pong forever.
                    let (mig, cost) = self.sched.idle_pull(&mut self.tasks, CpuId(cpu), t);
                    let Some(m) = mig else {
                        return;
                    };
                    self.trace.record(t, m.to.0, m.task, TraceKind::Migrate);
                    self.charge_kernel(cpu, cost);
                    t += cost;
                }
            }
        }
    }

    fn on_seg_end(&mut self, cpu: usize, epoch: u64) {
        if epoch != self.seg_epoch[cpu] {
            return;
        }
        let Some(tid) = self.sched.cpus[cpu].current else {
            return;
        };
        self.account_progress(cpu, self.now);
        match self.seg_event[cpu] {
            SegEventKind::WorkEnd => {
                // The action completed in full.
                self.conts[tid.0] = Cont::Ready;
                self.ple_exit_at[cpu] = None;
                self.advance_task(cpu, self.now);
            }
            SegEventKind::ParkDeadline => {
                // Spin budget exhausted: park on the mutex futex.
                self.park_spinner(cpu, tid, self.now);
            }
            SegEventKind::None => {}
        }
    }

    fn on_slice(&mut self, cpu: usize, epoch: u64) {
        if epoch != self.stint_epoch[cpu] {
            return;
        }
        let Some(tid) = self.sched.cpus[cpu].current else {
            return;
        };
        self.account_progress(cpu, self.now);
        if self.sched.cpus[cpu].rq.nr_schedulable() == 0 {
            // Nobody else: extend the stint.
            let slice = self.sched.slice_for(CpuId(cpu));
            self.queue
                .schedule(self.now + slice, Event::Slice(cpu, epoch));
            return;
        }
        // Preempt: save remaining work, requeue, pick next.
        self.trace.record(self.now, cpu, tid, TraceKind::Preempt);
        self.save_partial_progress(cpu, tid);
        self.sched.stop_current(
            &mut self.tasks,
            CpuId(cpu),
            self.now,
            oversub_sched::StopReason::Preempted,
        );
        self.stint_epoch[cpu] += 1;
        self.seg_epoch[cpu] += 1;
        self.ple_exit_at[cpu] = None;
        self.sched_resched(self.now, cpu);
    }

    fn on_ple_exit(&mut self, cpu: usize, epoch: u64) {
        if epoch != self.seg_epoch[cpu] {
            return;
        }
        let Some(tid) = self.sched.cpus[cpu].current else {
            return;
        };
        if !matches!(self.run_kind[cpu], RunKind::Spin(_)) {
            return;
        }
        self.account_progress(cpu, self.now);
        // VM exit + directed yield: the spinner is descheduled but gets no
        // skip flag — CFS will bring it back soon, and the adaptive window
        // doubles so future exits get rarer. This is why PLE barely helps.
        self.charge_kernel(cpu, self.ple.params.exit_cost_ns);
        self.ple.stats.exits += 1;
        self.trace.record(self.now, cpu, tid, TraceKind::PleExit);
        // The window persists and only grows (KVM's adaptive ple_window),
        // so a vCPU that keeps spinning exits ever more rarely — one of
        // the reasons PLE ends up behaving like vanilla.
        self.ple_window[tid.0] = (self.ple_window[tid.0] * 2).min(2_000_000);
        let t = self.now + self.ple.params.exit_cost_ns;
        self.save_partial_progress(cpu, tid);
        self.sched.stop_current(
            &mut self.tasks,
            CpuId(cpu),
            t,
            oversub_sched::StopReason::Preempted,
        );
        self.stint_epoch[cpu] += 1;
        self.seg_epoch[cpu] += 1;
        self.ple_exit_at[cpu] = None;
        self.sched_resched(t, cpu);
    }

    fn on_preempt_check(&mut self, cpu: usize) {
        let Some(curr) = self.sched.cpus[cpu].current else {
            self.sched_resched(self.now, cpu);
            return;
        };
        // Only preempt if a schedulable task has materially lower
        // vruntime — CFS's check_preempt_wakeup test against the current
        // task's effective (stint-adjusted) vruntime. Wakeup preemption is
        // immediate (the minimum granularity only guards tick preemption).
        let best = self.sched.cpus[cpu].rq.pick_next(&self.tasks);
        let Some((cand, _)) = best else { return };
        let gran = self.sched.params.wakeup_granularity_ns;
        let cv = self
            .sched
            .curr_effective_vruntime(&self.tasks, CpuId(cpu), self.now)
            .unwrap_or(u64::MAX);
        let _ = curr;
        // A candidate that was just woken and has not run since its wake
        // is always preempt-worthy — the paper's VB explicitly schedules
        // waking threads immediately, mirroring how wakeup preemption
        // favours real sleepers.
        let fresh_wake = self.tasks[cand.0].wake_requested_at.is_some();
        if !fresh_wake && self.tasks[cand.0].vruntime + gran >= cv {
            return;
        }
        let curr = self.sched.cpus[cpu].current.expect("checked above");
        self.account_progress(cpu, self.now);
        self.trace.record(self.now, cpu, curr, TraceKind::Preempt);
        self.save_partial_progress(cpu, curr);
        self.sched.stop_current(
            &mut self.tasks,
            CpuId(cpu),
            self.now,
            oversub_sched::StopReason::Preempted,
        );
        self.stint_epoch[cpu] += 1;
        self.seg_epoch[cpu] += 1;
        self.ple_exit_at[cpu] = None;
        self.sched_resched(self.now, cpu);
    }

    fn on_bwd_timer(&mut self, cpu: usize) {
        if !self.bwd.params.enabled {
            return;
        }
        // Re-arm first so detection handling cannot drop the timer.
        self.queue
            .schedule_periodic(self.now + self.bwd.params.interval_ns, Event::BwdTimer(cpu));
        if !self.sched.online[cpu] {
            return;
        }
        self.account_progress(cpu, self.now);
        let detected = {
            let hw = &self.sched.cpus[cpu].hw;
            self.bwd.check_window(hw)
        };
        self.sched.cpus[cpu].hw.new_window();
        let had_current = self.sched.cpus[cpu].current;
        // The timer interrupt itself steals a little time from the task.
        if had_current.is_some() {
            self.shift_segment(cpu, self.bwd.params.check_cost_ns);
        }
        self.charge_kernel(cpu, self.bwd.params.check_cost_ns);

        if !detected {
            return;
        }
        let Some(tid) = had_current else { return };
        let real_spin = matches!(self.run_kind[cpu], RunKind::Spin(_));
        self.bwd.classify_detection(real_spin);
        // Deschedule with the skip flag.
        let t = self.sched.cpus[cpu].accounted_until;
        self.trace.record(t, cpu, tid, TraceKind::BwdDeschedule);
        self.save_partial_progress(cpu, tid);
        self.sched.bwd_mark_skip(&mut self.tasks, CpuId(cpu), tid);
        self.sched.stop_current(
            &mut self.tasks,
            CpuId(cpu),
            t,
            oversub_sched::StopReason::Preempted,
        );
        self.stint_epoch[cpu] += 1;
        self.seg_epoch[cpu] += 1;
        self.ple_exit_at[cpu] = None;
        self.sched_resched(t, cpu);
    }

    fn on_balance(&mut self, cpu: usize) {
        self.queue.schedule_periodic(
            self.now + self.cfg.sched.balance_interval_ns,
            Event::Balance(cpu),
        );
        if !self.sched.online[cpu] {
            return;
        }
        let (migs, cost) = self
            .sched
            .periodic_balance(&mut self.tasks, CpuId(cpu), self.now);
        // Balance runs in softirq context; only charge when idle to keep
        // the running task's segment timing intact (cost is small).
        if self.sched.cpus[cpu].current.is_none() {
            self.account_progress(cpu, self.now);
            self.charge_kernel(cpu, cost);
        } else {
            self.sched.cpus[cpu].time.kernel_ns += cost;
        }
        if !migs.is_empty() && self.sched.cpus[cpu].current.is_none() {
            self.sched_resched(self.now + cost, cpu);
        }
    }

    fn on_io_done(&mut self, task: usize) {
        let tid = TaskId(task);
        if self.tasks[task].state != TaskState::Sleeping {
            return;
        }
        // Interrupt-context wake: placement logic runs, but the cost is
        // not charged to any task's segment.
        let waker_cpu = self.tasks[task].last_cpu;
        let out = self
            .sched
            .vanilla_wake(&mut self.tasks, tid, waker_cpu, self.now);
        self.sched.cpus[out.cpu.0].time.kernel_ns += out.cost_ns;
        self.trace.record(self.now, out.cpu.0, tid, TraceKind::Wake);
        let t = self.now + out.cost_ns;
        self.sched_resched(t, out.cpu.0);
        if out.preempt && self.sched.cpus[out.cpu.0].current.is_some() {
            self.queue
                .schedule_nocancel(t, Event::PreemptCheck(out.cpu.0));
        }
    }

    fn on_elastic(&mut self, cores: usize) {
        let ncpu = self.sched.topo.num_cpus();
        let cores = cores.min(ncpu).max(1);
        self.sched.set_online_count(cores);
        // Drain newly-offline CPUs.
        for c in cores..ncpu {
            self.account_progress(c, self.now);
            if let Some(tid) = self.sched.cpus[c].current {
                self.save_partial_progress(c, tid);
                self.sched.stop_current(
                    &mut self.tasks,
                    CpuId(c),
                    self.now,
                    oversub_sched::StopReason::Preempted,
                );
                self.stint_epoch[c] += 1;
                self.seg_epoch[c] += 1;
                self.ple_exit_at[c] = None;
            }
            // Move every queued, unpinned task to an online CPU.
            let queued: Vec<TaskId> = self.sched.cpus[c]
                .rq
                .schedulable_tasks(&self.tasks)
                .collect();
            let parked: Vec<TaskId> = {
                // Collect movable parked tasks by repeatedly dequeuing;
                // tasks pinned to the offline CPU stay stuck, exactly
                // like their runnable siblings (the paper's "pinning
                // cannot adapt" behaviour must not depend on whether a
                // task happened to be parked at shrink time).
                let mut v = Vec::new();
                loop {
                    let movable = {
                        let rq = &self.sched.cpus[c].rq;
                        rq.entries().into_iter().map(|(_, tid)| tid).find(|&tid| {
                            self.tasks[tid.0].vb_blocked
                                && self.tasks[tid.0].pinned != Some(CpuId(c))
                        })
                    };
                    match movable {
                        Some(p) => {
                            self.sched.cpus[c].rq.dequeue(&self.tasks[p.0]);
                            v.push(p);
                        }
                        None => break,
                    }
                }
                v
            };
            let mut target = 0usize;
            for tid in queued {
                if self.tasks[tid.0].pinned == Some(CpuId(c)) {
                    continue; // stuck — the paper's "pinning crashes" case
                }
                self.sched.cpus[c].rq.dequeue(&self.tasks[tid.0]);
                let dest = target % cores;
                target += 1;
                self.tasks[tid.0].last_cpu = CpuId(dest);
                self.sched.cpus[dest].rq.enqueue(&self.tasks[tid.0]);
            }
            for tid in parked {
                let dest = target % cores;
                target += 1;
                self.tasks[tid.0].last_cpu = CpuId(dest);
                self.sched.cpus[dest].rq.enqueue(&self.tasks[tid.0]);
            }
        }
        for c in 0..cores {
            self.sched_resched(self.now, c);
        }
    }

    // ---------------------------------------------------------------
    // Segment helpers
    // ---------------------------------------------------------------

    /// Record how much of the current segment's work remains, updating the
    /// task's continuation. Call after `account_progress` and before
    /// `stop_current`.
    pub(crate) fn save_partial_progress(&mut self, cpu: usize, tid: TaskId) {
        let t = self.sched.cpus[cpu].accounted_until;
        match self.conts[tid.0] {
            Cont::Work { action, .. } => {
                let remaining_scaled = self.seg_done_at[cpu].saturating_since(t);
                let left = (remaining_scaled as f64 * self.seg_rate[cpu]) as u64;
                self.conts[tid.0] = Cont::Work {
                    action,
                    left_ns: left,
                };
            }
            Cont::SpinLock {
                lock,
                is_mutex,
                sig,
                budget_left,
            } if budget_left.is_some() => {
                let left = self.seg_done_at[cpu].saturating_since(t);
                self.conts[tid.0] = Cont::SpinLock {
                    lock,
                    is_mutex,
                    sig,
                    budget_left: Some(left),
                };
            }
            _ => {}
        }
    }

    /// Push the current segment's end (and any armed PLE exit) `delta`
    /// nanoseconds into the future — used when timer interrupts steal time
    /// from the running task.
    pub(crate) fn shift_segment(&mut self, cpu: usize, delta: u64) {
        if self.sched.cpus[cpu].current.is_none() {
            return;
        }
        self.seg_epoch[cpu] += 1;
        let e = self.seg_epoch[cpu];
        self.seg_done_at[cpu] += delta;
        match self.seg_event[cpu] {
            SegEventKind::WorkEnd | SegEventKind::ParkDeadline => {
                self.queue
                    .schedule_nocancel(self.seg_done_at[cpu], Event::SegEnd(cpu, e));
            }
            SegEventKind::None => {}
        }
        if let Some(p) = self.ple_exit_at[cpu] {
            let np = p + delta;
            self.ple_exit_at[cpu] = Some(np);
            self.queue.schedule_nocancel(np, Event::PleExit(cpu, e));
        }
    }

    /// Extra delay before a VB-woken task starts on a semi-idle core whose
    /// queue holds only parked tasks: the flag-poll rotation latency.
    pub(crate) fn wake_resched_delay(&mut self, cpu: usize) -> u64 {
        let c = &self.sched.cpus[cpu];
        if c.current.is_none() && c.rq.nr_schedulable() == 0 && c.rq.nr_vb_parked() > 0 {
            // The delay itself is attributed by account_progress (the CPU
            // sits in its poll rotation, which we book as idle time), so
            // only the latency is returned here — adding it to kernel_ns
            // as well would double-count the interval.
            let parked = c.rq.nr_vb_parked().min(8) as u64;
            self.cfg.sched.vb_poll_ns * parked
        } else {
            0
        }
    }

    // ---------------------------------------------------------------
    // Report
    // ---------------------------------------------------------------

    fn build_report(
        mut self,
        workload: &dyn Workload,
        label: &str,
        makespan: SimTime,
    ) -> RunReport {
        // Close accounting on every CPU.
        for c in 0..self.sched.topo.num_cpus() {
            self.account_progress(c, makespan);
        }
        let mut report = RunReport {
            label: label.to_string(),
            makespan_ns: makespan.as_nanos(),
            latency: LatencyHist::new(),
            ..RunReport::default()
        };
        report.tasks.tasks = self.tasks.len();
        for t in &self.tasks {
            let s = &t.stats;
            report.tasks.exec_ns += s.exec_ns;
            report.tasks.spin_ns += s.spin_ns;
            report.tasks.sleep_ns += s.sleep_ns;
            report.tasks.wait_ns += s.wait_ns;
            report.tasks.nvcsw += s.nvcsw;
            report.tasks.nivcsw += s.nivcsw;
            report.tasks.migrations_local += s.migrations_local;
            report.tasks.migrations_remote += s.migrations_remote;
            report.tasks.wakeups += s.wakeups;
            report.tasks.wakeup_latency_ns += s.wakeup_latency_ns;
            report.tasks.bwd_deschedules += s.bwd_deschedules;
        }
        report.cpus.cpus = self.sched.num_online().max(1);
        for c in &self.sched.cpus {
            report.cpus.useful_ns += c.time.useful_ns;
            report.cpus.spin_ns += c.time.spin_ns;
            report.cpus.kernel_ns += c.time.kernel_ns;
            report.cpus.idle_ns += c.time.idle_ns;
            report.cpus.context_switches += c.time.context_switches;
        }
        report.blocking.sleep_waits = self.futex.sleep_waits + self.epoll.sleep_waits;
        report.blocking.virtual_waits = self.futex.virtual_waits + self.epoll.virtual_waits;
        report.blocking.wakes = self.futex.wakes + self.epoll.wakes;
        report.bwd.checks = self.bwd.stats.checks;
        report.bwd.detections = self.bwd.stats.detections;
        report.bwd.true_positives = self.bwd.stats.true_positives;
        report.bwd.false_positives = self.bwd.stats.false_positives;
        report.bwd.ple_exits = self.ple.stats.exits;
        report.bwd.spin_episodes = self.spin_episodes;
        workload.collect(&mut report);
        report
    }
}

/// Run `workload` under `config`, labelling the report.
pub fn run_labelled(workload: &mut dyn Workload, config: &RunConfig, label: &str) -> RunReport {
    let engine = Engine::new(config.clone(), workload);
    engine.run_with_trace(workload, label).0
}

/// Run `workload` under `config`, additionally returning the number of
/// discrete events the engine processed — the denominator of the
/// events-per-second throughput benchmark. The count is *not* part of
/// [`RunReport`]: it is an engine-internal quantity that legitimately
/// differs between the optimized and reference engines (resched
/// coalescing), while every report metric stays bit-identical.
pub fn run_counted(
    workload: &mut dyn Workload,
    config: &RunConfig,
    label: &str,
) -> (RunReport, u64) {
    let engine = Engine::new(config.clone(), workload);
    let (report, _, events) = engine.run_with_trace(workload, label);
    (report, events)
}

/// Run `workload` under `config` and return the scheduling trace alongside
/// the report (enable recording with [`RunConfig::traced`]).
pub fn run_traced(workload: &mut dyn Workload, config: &RunConfig) -> (RunReport, TraceLog) {
    let name = workload.name().to_string();
    let engine = Engine::new(config.clone(), workload);
    let (report, trace, _) = engine.run_with_trace(workload, &name);
    (report, trace)
}

/// Run `workload` under `config`.
pub fn run(workload: &mut dyn Workload, config: &RunConfig) -> RunReport {
    let name = workload.name().to_string();
    run_labelled(workload, config, &name)
}
