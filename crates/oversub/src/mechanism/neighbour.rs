//! Neighbour-aware spin management — an out-of-paper extension mechanism.
//!
//! VB and BWD treat every spin the same regardless of what else the core
//! is running. This mechanism sizes a spinner's *patience* — how long it
//! may busy-wait before being descheduled — from observed co-runner
//! interference on its core, built from two signals the engine already
//! exposes:
//!
//! - **spin-segment churn** ([`Mechanism::on_spin_segment`]): distinct
//!   spin signatures alternating on one core mean several waiters are
//!   time-sharing it — each spin burns a co-runner's slice;
//! - **preemption pressure** ([`Mechanism::on_slice_expiry`]): slice
//!   expiries mean runnable neighbours are queueing behind the current
//!   task, so every wasted spin nanosecond is stolen from a neighbour.
//!
//! On a quiet core (no churn, no preemption) the mechanism arms nothing
//! at all and the spinner keeps its full slice — spinning is free when
//! nobody is waiting. As interference accumulates, the patience window
//! shrinks geometrically; when the armed exit fires the spinner is
//! descheduled *with the BWD skip flag set*, deprioritizing it until its
//! neighbours have run (the part PLE lacks). A CPU-elasticity change
//! resets all state: the interference landscape it measured is gone.
//!
//! Determinism: state advances only from `on_spin_segment`,
//! `on_slice_expiry`, `on_spin_exit`, and `on_elastic_change` — hooks
//! whose invocation sequence is identical between the optimized and
//! reference engines. (`on_pick` is deliberately unused: pick-round
//! counts may differ across engine internals.)

use super::{Mechanism, SpinExitVerdict};
use oversub_bwd::ExecEnv;
use oversub_metrics::MechCounters;
use oversub_simcore::SimTime;
use oversub_task::{SpinSig, TaskId};
use std::any::Any;

/// Patience granted to a spinner on an uncontended-but-warm core.
const BASE_PATIENCE_NS: u64 = 400_000;
/// Floor below which the patience window never shrinks.
const MIN_PATIENCE_NS: u64 = 25_000;
/// Kernel cost of the forced deschedule (context-switch entry path).
const EXIT_COST_NS: u64 = 2_000;
/// Interference units per halving of the patience window.
const PRESSURE_PER_LEVEL: u64 = 4;
/// Spin segments between decay points of the per-core window.
const DECAY_SEGMENTS: u64 = 32;

/// Per-core interference ledger, decayed every [`DECAY_SEGMENTS`] spin
/// segments so stale pressure ages out without any timer.
#[derive(Clone, Copy, Debug, Default)]
struct CoreState {
    /// Slice expiries since the last decay point (preemption pressure).
    preemptions: u64,
    /// Loop-head switches between distinct spin signatures (churn).
    churn: u64,
    /// Loop head of the previous spin segment on this core.
    last_loop_head: u64,
    /// Spin segments since the last decay point.
    segments: u64,
}

impl CoreState {
    /// Total interference currently charged to this core.
    fn pressure(&self) -> u64 {
        self.preemptions + self.churn
    }
}

/// The neighbour-aware spin-management mechanism.
#[derive(Debug, Default)]
pub struct NeighbourMechanism {
    /// Lazily grown per-core state.
    cores: Vec<CoreState>,
    /// Forced spin exits taken.
    exits: u64,
    /// Spin segments that were left alone (quiet core).
    tolerated: u64,
    /// Elastic-change resets taken.
    resets: u64,
}

impl NeighbourMechanism {
    /// Build the mechanism with empty per-core state.
    pub fn new() -> Self {
        NeighbourMechanism::default()
    }

    /// Forced spin exits taken so far.
    pub fn exits(&self) -> u64 {
        self.exits
    }

    /// Spin segments tolerated without arming an exit.
    pub fn tolerated(&self) -> u64 {
        self.tolerated
    }

    fn core(&mut self, cpu: usize) -> &mut CoreState {
        if self.cores.len() <= cpu {
            self.cores.resize(cpu + 1, CoreState::default());
        }
        &mut self.cores[cpu]
    }

    /// The patience window for the given interference level: halved per
    /// [`PRESSURE_PER_LEVEL`] units, clamped at [`MIN_PATIENCE_NS`].
    fn patience_ns(pressure: u64) -> u64 {
        let level = (pressure / PRESSURE_PER_LEVEL).min(10) as u32;
        (BASE_PATIENCE_NS >> level).max(MIN_PATIENCE_NS)
    }
}

impl Mechanism for NeighbourMechanism {
    fn name(&self) -> &'static str {
        "neighbour"
    }

    fn on_slice_expiry(&mut self, cpu: usize, _tid: TaskId) {
        self.core(cpu).preemptions += 1;
    }

    fn on_spin_segment(
        &mut self,
        cpu: usize,
        _tid: TaskId,
        sig: &SpinSig,
        _env: ExecEnv,
        now: SimTime,
    ) -> Option<SimTime> {
        let c = self.core(cpu);
        c.segments += 1;
        if c.last_loop_head != 0 && c.last_loop_head != sig.branch_to {
            // A different spin loop than last time: waiters are
            // time-sharing this core.
            c.churn += 1;
        }
        c.last_loop_head = sig.branch_to;
        if c.segments >= DECAY_SEGMENTS {
            c.segments = 0;
            c.preemptions /= 2;
            c.churn /= 2;
        }
        let pressure = c.pressure();
        if pressure == 0 {
            // Quiet core: nobody is waiting behind this spinner.
            self.tolerated += 1;
            return None;
        }
        Some(now + Self::patience_ns(pressure))
    }

    fn on_spin_exit(&mut self, _cpu: usize, _tid: TaskId) -> SpinExitVerdict {
        self.exits += 1;
        SpinExitVerdict {
            charge_ns: EXIT_COST_NS,
            // Unlike PLE, deprioritize the spinner until its neighbours
            // have had their turn.
            set_skip: true,
        }
    }

    fn on_elastic_change(&mut self, _cores: usize) {
        // The co-runner landscape just changed shape: measured pressure
        // no longer describes it.
        self.cores.clear();
        self.resets += 1;
    }

    fn counters(&self) -> MechCounters {
        MechCounters {
            decisions: self.exits,
            spin_exits: self.exits,
            recoveries: self.resets,
            ..MechCounters::named("neighbour")
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(m: &mut NeighbourMechanism, cpu: usize, salt: u64, now: u64) -> Option<SimTime> {
        m.on_spin_segment(
            cpu,
            TaskId(0),
            &SpinSig::bare_loop(salt),
            ExecEnv::Container,
            SimTime::from_nanos(now),
        )
    }

    #[test]
    fn quiet_core_tolerates_spinning() {
        let mut m = NeighbourMechanism::new();
        assert_eq!(seg(&mut m, 0, 1, 1_000), None);
        assert_eq!(seg(&mut m, 0, 1, 2_000), None);
        assert_eq!(m.tolerated(), 2);
        assert_eq!(m.exits(), 0);
    }

    #[test]
    fn preemption_pressure_arms_and_shrinks_patience() {
        let mut m = NeighbourMechanism::new();
        m.on_slice_expiry(0, TaskId(1));
        let first = seg(&mut m, 0, 1, 0).expect("pressure must arm an exit");
        // More preemptions shrink the window.
        for _ in 0..PRESSURE_PER_LEVEL {
            m.on_slice_expiry(0, TaskId(1));
        }
        let second = seg(&mut m, 0, 1, 0).expect("still armed");
        assert!(second < first, "patience must shrink under pressure");
        // Another core is unaffected.
        assert_eq!(seg(&mut m, 1, 1, 0), None);
    }

    #[test]
    fn signature_churn_counts_as_interference() {
        let mut m = NeighbourMechanism::new();
        assert_eq!(seg(&mut m, 0, 1, 0), None, "first segment: no history");
        // A different loop head on the same core: churn.
        assert!(seg(&mut m, 0, 2, 0).is_some());
    }

    #[test]
    fn patience_clamps_at_the_floor() {
        assert_eq!(NeighbourMechanism::patience_ns(0), BASE_PATIENCE_NS);
        assert_eq!(
            NeighbourMechanism::patience_ns(PRESSURE_PER_LEVEL),
            BASE_PATIENCE_NS / 2
        );
        assert_eq!(NeighbourMechanism::patience_ns(u64::MAX), MIN_PATIENCE_NS);
    }

    #[test]
    fn exit_sets_the_skip_flag_and_elastic_change_resets() {
        let mut m = NeighbourMechanism::new();
        m.on_slice_expiry(0, TaskId(1));
        let v = m.on_spin_exit(0, TaskId(0));
        assert!(v.set_skip);
        assert_eq!(v.charge_ns, EXIT_COST_NS);
        assert_eq!(m.counters().spin_exits, 1);
        m.on_elastic_change(4);
        // Pressure gone: the next segment is tolerated again.
        assert_eq!(seg(&mut m, 0, 1, 0), None);
        assert_eq!(m.counters().recoveries, 1);
    }
}
