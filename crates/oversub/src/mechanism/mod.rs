//! The mechanism layer: the paper's OS mechanisms as first-class,
//! composable objects.
//!
//! The paper contributes two kernel mechanisms — virtual blocking (VB,
//! §3.1) and busy-waiting detection (BWD, §3.2) — and compares them to
//! hardware pause-loop exiting (PLE). Each lands in the kernel at a small
//! number of well-defined points: the futex/epoll block and wake paths, a
//! per-core monitoring timer, the scheduler's pick path, and the spin-loop
//! entry. The [`Mechanism`] trait mirrors exactly those hook points, so
//! the engine's event loop stays mechanism-agnostic: it consults the
//! pipeline at each hook and applies the returned verdicts (descheduling,
//! skip flags, kernel-time charges) itself.
//!
//! Division of labour: **decisions live in the mechanism, mechanics live
//! in the engine**. A mechanism never touches runqueues, epochs, or the
//! event queue — it inspects the context it is handed (hardware monitoring
//! window, spin signature, wait mode) and returns a verdict. This is what
//! makes the pipeline deterministic: hook order is fixed by pipeline
//! order, and verdict application is centralized in one place.
//!
//! The three in-tree implementations are [`VbMechanism`], [`BwdMechanism`]
//! and [`PleMechanism`]; [`crate::config::Mechanisms`] presets build the
//! pipeline via [`MechanismSet::from_config`]. Out-of-tree mechanisms
//! register through [`crate::RunConfig::with_mechanism`] — see
//! `examples/custom_mechanism.rs` for a complete spin-throttle mechanism
//! written purely against this public API.

mod bwd;
mod neighbour;
mod ple;
mod vb;

pub use bwd::BwdMechanism;
pub use neighbour::NeighbourMechanism;
pub use ple::PleMechanism;
pub use vb::VbMechanism;

use crate::config::RunConfig;
use oversub_bwd::ExecEnv;
use oversub_hw::CoreHw;
use oversub_ksync::{FutexParams, WaitMode};
use oversub_metrics::MechCounters;
use oversub_simcore::SimTime;
use oversub_task::{SpinSig, TaskId};
use std::any::Any;
use std::fmt;
use std::sync::Arc;

/// What a mechanism may configure in the kernel substrate before the run
/// starts (the moral equivalent of the paper's patches flipping sysctls).
#[derive(Clone, Debug, Default)]
pub struct SubstrateConfig {
    /// Futex/epoll-layer parameters (VB enables its flags here).
    pub futex: FutexParams,
    /// Whether the scheduler accepts `StopReason::VirtualBlock` parks.
    pub sched_vb: bool,
}

/// Context handed to [`Mechanism::on_timer`]: one core's monitoring state
/// at the moment the mechanism's periodic timer fires.
pub struct TimerCtx<'a> {
    /// The CPU the timer fired on.
    pub cpu: usize,
    /// Current virtual time.
    pub now: SimTime,
    /// The core's hardware monitoring window (LBR ring + PMCs). The
    /// mechanism owns the window across its own checks and must clear it
    /// (`CoreHw::new_window`) after inspecting it.
    pub hw: &'a mut CoreHw,
    /// Whether a task is currently running on the CPU.
    pub has_current: bool,
    /// Ground truth: is the current segment genuine busy-waiting? (The
    /// engine knows; a mechanism may use this only for classification
    /// counters, never for the decision itself.)
    pub real_spin: bool,
    /// Fault injection: the sensor readout is corrupted this tick and the
    /// window classification must be inverted (spin reads as work, work
    /// reads as spin). Always `false` outside chaos runs.
    pub sensor_flip: bool,
}

/// What the engine should do after [`Mechanism::on_timer`].
#[derive(Clone, Copy, Debug, Default)]
pub struct TimerVerdict {
    /// Kernel time the check consumed (charged to the core; the current
    /// segment is shifted by the same amount).
    pub charge_ns: u64,
    /// Deschedule the current task.
    pub deschedule: bool,
    /// When descheduling, also set the BWD skip flag (tail-insert until
    /// every other schedulable task has run).
    pub set_skip: bool,
}

/// What the engine should do after [`Mechanism::on_spin_exit`].
#[derive(Clone, Copy, Debug, Default)]
pub struct SpinExitVerdict {
    /// Kernel time of the exit itself (e.g. the VM exit + hypervisor
    /// handling for PLE), charged before the deschedule.
    pub charge_ns: u64,
    /// Set the BWD skip flag on the descheduled spinner.
    pub set_skip: bool,
}

/// One pluggable OS mechanism. Hook points mirror where the paper's
/// kernel patches land; every hook has a no-op default so a mechanism
/// implements only what it needs.
///
/// Determinism contract: hooks must be pure functions of the mechanism's
/// own state and the arguments — no host time, no host randomness, no
/// global state. The engine invokes hooks in pipeline order.
pub trait Mechanism {
    /// Short stable name ("vb", "bwd", ...; used in reports).
    fn name(&self) -> &'static str;

    /// Configure the kernel substrate before the run starts.
    fn configure(&mut self, _sub: &mut SubstrateConfig) {}

    /// Period of the mechanism's per-core monitoring timer, if it has one
    /// (BWD's 100 µs window). `None` = no timer is armed.
    fn timer_interval_ns(&self) -> Option<u64> {
        None
    }

    /// The per-core monitoring timer fired. Inspect the monitoring window
    /// and decide whether to deschedule the current task.
    fn on_timer(&mut self, _ctx: &mut TimerCtx<'_>) -> TimerVerdict {
        TimerVerdict::default()
    }

    /// Opt-in fast path for a timer tick on an *idle, quiet* core: no task
    /// is running, no faults are armed, and the monitoring window is
    /// untouched (`CoreHw::window_untouched`). Return `Some(charge_ns)` to
    /// take the tick without a [`TimerCtx`] — the implementation must
    /// leave the mechanism in exactly the state a full
    /// [`Mechanism::on_timer`] call would have (counters included), given
    /// that an untouched window classifies as not-spinning and clearing
    /// it is a no-op. Return `None` (the default) to force the full
    /// dispatch; mechanisms that don't opt in lose nothing but speed.
    fn on_timer_idle_quiet(&mut self, _cpu: usize) -> Option<u64> {
        None
    }

    /// Stronger opt-in than [`Mechanism::on_timer_idle_quiet`]: when the
    /// idle-quiet tick reduces to a *constant* — a fixed kernel charge
    /// plus one recorded check, with no other per-tick state — return
    /// `Some(charge_ns)` and the engine will take such ticks without any
    /// mechanism call at all, crediting the deferred checks in one batch
    /// through [`Mechanism::note_idle_checks`] before counters are read.
    /// Must return `None` whenever per-tick state advances (e.g. BWD's
    /// adaptive-backoff stride counters). Queried once at engine
    /// construction, after [`Mechanism::configure`].
    fn idle_quiet_constant(&self) -> Option<u64> {
        None
    }

    /// Credit `n` idle-quiet ticks deferred by the engine's constant
    /// fast path (only ever called when [`Mechanism::idle_quiet_constant`]
    /// returned `Some`). Recorded checks are commutative counters, so
    /// batching them cannot perturb any metric.
    fn note_idle_checks(&mut self, n: u64) {
        let _ = n;
    }

    /// A task blocked in the kernel (futex or epoll path); `mode` says
    /// whether the substrate slept it or VB-parked it.
    fn on_block(&mut self, _cpu: usize, _tid: TaskId, _mode: WaitMode) {}

    /// A blocked task was woken (futex wake or epoll post).
    fn on_wake(&mut self, _tid: TaskId, _mode: WaitMode) {}

    /// The scheduler finished a pick round on `cpu`; `skips_released` is
    /// the number of BWD skip flags that expired during it.
    fn on_pick(&mut self, _cpu: usize, _skips_released: u64) {}

    /// The current task's time slice expired and it is being preempted.
    fn on_slice_expiry(&mut self, _cpu: usize, _tid: TaskId) {}

    /// A busy-wait segment begins at `now`. Return `Some(t)` to schedule a
    /// spin exit at `t` ([`Mechanism::on_spin_exit`] fires then if the
    /// task is still spinning); the first pipeline mechanism that returns
    /// `Some` owns the exit. This is PLE's window accounting hook.
    fn on_spin_segment(
        &mut self,
        _cpu: usize,
        _tid: TaskId,
        _sig: &SpinSig,
        _env: ExecEnv,
        _now: SimTime,
    ) -> Option<SimTime> {
        None
    }

    /// The spin exit armed by [`Mechanism::on_spin_segment`] fired and the
    /// task is still busy-waiting: the engine will charge the verdict's
    /// cost and deschedule the spinner.
    fn on_spin_exit(&mut self, _cpu: usize, _tid: TaskId) -> SpinExitVerdict {
        SpinExitVerdict::default()
    }

    /// The online core count changed (CPU elasticity).
    fn on_elastic_change(&mut self, _cores: usize) {}

    /// The liveness watchdog rescued `tid` from a lost VB park by falling
    /// back to a real wake — the mechanism's graceful-degradation signal
    /// (VB counts these as recoveries).
    fn on_watchdog_recovery(&mut self, _tid: TaskId) {}

    /// Structured counters for the run report.
    fn counters(&self) -> MechCounters;

    /// Downcast support (the engine extracts BWD/PLE statistics for the
    /// report's legacy `bwd` aggregate through this).
    fn as_any(&self) -> &dyn Any;
}

/// A cloneable constructor for an out-of-tree mechanism, stored in
/// [`RunConfig`]. The factory runs once per engine construction, so every
/// run (including the reference-engine twin of a golden determinism pair)
/// gets a fresh mechanism instance. The constructor must be `Send + Sync`
/// so configs carrying custom mechanisms can cross into sweep-pool worker
/// threads (`simcore::pool`).
#[derive(Clone)]
pub struct MechanismFactory(Arc<dyn Fn() -> Box<dyn Mechanism> + Send + Sync>);

impl MechanismFactory {
    /// Wrap a constructor closure.
    pub fn new(f: impl Fn() -> Box<dyn Mechanism> + Send + Sync + 'static) -> Self {
        MechanismFactory(Arc::new(f))
    }

    /// Build a fresh mechanism instance.
    pub fn build(&self) -> Box<dyn Mechanism> {
        (self.0)()
    }
}

impl fmt::Debug for MechanismFactory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("MechanismFactory(..)")
    }
}

/// The mechanism pipeline of one run: the in-tree mechanisms selected by
/// the [`crate::config::Mechanisms`] preset, followed by any
/// user-registered mechanisms, in registration order.
#[derive(Default)]
pub struct MechanismSet {
    items: Vec<Box<dyn Mechanism>>,
}

impl MechanismSet {
    /// Build the pipeline for `cfg`: VB, then BWD, then PLE, then the
    /// neighbour-aware mechanism (each if enabled), then the custom
    /// mechanisms in registration order.
    pub fn from_config(cfg: &RunConfig) -> Self {
        let mut items: Vec<Box<dyn Mechanism>> = Vec::new();
        if cfg.mech.vb {
            items.push(Box::new(VbMechanism::new(cfg.mech.vb_auto_disable)));
        }
        if cfg.mech.bwd {
            items.push(Box::new(BwdMechanism::new(cfg.bwd())));
        }
        if cfg.mech.ple {
            items.push(Box::new(PleMechanism::new(cfg.ple())));
        }
        if cfg.mech.neighbour {
            items.push(Box::new(NeighbourMechanism::new()));
        }
        for f in &cfg.custom_mechanisms {
            items.push(f.build());
        }
        MechanismSet { items }
    }

    /// Run every mechanism's [`Mechanism::configure`] over a default
    /// substrate configuration and return the result.
    pub fn configure_substrate(&mut self) -> SubstrateConfig {
        let mut sub = SubstrateConfig::default();
        for m in &mut self.items {
            m.configure(&mut sub);
        }
        sub
    }

    /// True when no mechanism is registered (the engine skips all hook
    /// dispatch — vanilla runs pay nothing for the pipeline).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of mechanisms in the pipeline.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Mutable access to one mechanism (the engine's timer/spin-exit
    /// dispatch, which must split borrows with the scheduler state).
    pub fn get_mut(&mut self, idx: usize) -> &mut dyn Mechanism {
        &mut *self.items[idx]
    }

    /// The timer interval of mechanism `idx`, if it has a timer.
    pub fn timer_interval_ns(&self, idx: usize) -> Option<u64> {
        self.items[idx].timer_interval_ns()
    }

    /// Batched handling of one timer tick on an idle, quiet core: the
    /// common case on oversized machines, where most cores tick with
    /// nothing running and an untouched monitoring window. Returns the
    /// kernel charge when mechanism `idx` opted in via
    /// [`Mechanism::on_timer_idle_quiet`] — amortizing away the
    /// [`TimerCtx`] construction, window classification, and window clear
    /// of the full path — or `None` when the tick must take the full
    /// dispatch. With the engine gating on the scheduler's active-core
    /// bitset, full `on_timer` dispatches scale with *active* cores, not
    /// machine size.
    pub fn dispatch_timer_batch(&mut self, idx: usize, cpu: usize) -> Option<u64> {
        self.items[idx].on_timer_idle_quiet(cpu)
    }

    /// [`Mechanism::idle_quiet_constant`] of mechanism `idx`.
    pub fn idle_quiet_constant(&self, idx: usize) -> Option<u64> {
        self.items[idx].idle_quiet_constant()
    }

    /// Flush the engine's deferred idle-tick counts into their
    /// mechanisms ([`Mechanism::note_idle_checks`]).
    pub fn flush_idle_checks(&mut self, pending: &mut [u64]) {
        for (idx, n) in pending.iter_mut().enumerate() {
            if *n > 0 {
                self.items[idx].note_idle_checks(*n);
                *n = 0;
            }
        }
    }

    /// `(index, interval)` of every mechanism with a periodic timer.
    pub fn timers(&self) -> Vec<(usize, u64)> {
        self.items
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.timer_interval_ns().map(|ns| (i, ns)))
            .collect()
    }

    /// Fan [`Mechanism::on_block`] out to the pipeline.
    pub fn on_block(&mut self, cpu: usize, tid: TaskId, mode: WaitMode) {
        for m in &mut self.items {
            m.on_block(cpu, tid, mode);
        }
    }

    /// Fan [`Mechanism::on_wake`] out to the pipeline.
    pub fn on_wake(&mut self, tid: TaskId, mode: WaitMode) {
        for m in &mut self.items {
            m.on_wake(tid, mode);
        }
    }

    /// Fan [`Mechanism::on_pick`] out to the pipeline.
    pub fn on_pick(&mut self, cpu: usize, skips_released: u64) {
        for m in &mut self.items {
            m.on_pick(cpu, skips_released);
        }
    }

    /// Fan [`Mechanism::on_slice_expiry`] out to the pipeline.
    pub fn on_slice_expiry(&mut self, cpu: usize, tid: TaskId) {
        for m in &mut self.items {
            m.on_slice_expiry(cpu, tid);
        }
    }

    /// Fan [`Mechanism::on_elastic_change`] out to the pipeline.
    pub fn on_elastic_change(&mut self, cores: usize) {
        for m in &mut self.items {
            m.on_elastic_change(cores);
        }
    }

    /// Fan [`Mechanism::on_watchdog_recovery`] out to the pipeline.
    pub fn on_watchdog_recovery(&mut self, tid: TaskId) {
        for m in &mut self.items {
            m.on_watchdog_recovery(tid);
        }
    }

    /// Offer a new spin segment to the pipeline; the first mechanism that
    /// arms an exit owns it. Returns `(exit_time, mechanism_index)`.
    pub fn arm_spin_exit(
        &mut self,
        cpu: usize,
        tid: TaskId,
        sig: &SpinSig,
        env: ExecEnv,
        now: SimTime,
    ) -> Option<(SimTime, usize)> {
        for (i, m) in self.items.iter_mut().enumerate() {
            if let Some(at) = m.on_spin_segment(cpu, tid, sig, env, now) {
                return Some((at, i));
            }
        }
        None
    }

    /// Collect every mechanism's counters, in pipeline order.
    pub fn counters(&self) -> Vec<MechCounters> {
        self.items.iter().map(|m| m.counters()).collect()
    }

    /// Find the first mechanism of concrete type `T` in the pipeline.
    pub fn find<T: 'static>(&self) -> Option<&T> {
        self.items.iter().find_map(|m| m.as_any().downcast_ref())
    }
}

impl fmt::Debug for MechanismSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.items.iter().map(|m| m.name()).collect();
        write!(f, "MechanismSet{names:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Mechanisms;

    #[test]
    fn presets_build_expected_pipelines() {
        let cfg = RunConfig::vanilla(4);
        assert!(MechanismSet::from_config(&cfg).is_empty());

        let cfg = RunConfig::optimized(4);
        let set = MechanismSet::from_config(&cfg);
        assert_eq!(set.len(), 2);
        assert!(set.find::<VbMechanism>().is_some());
        assert!(set.find::<BwdMechanism>().is_some());
        assert!(set.find::<PleMechanism>().is_none());

        let cfg = RunConfig::vanilla(4).with_mech(Mechanisms::ple_only());
        let set = MechanismSet::from_config(&cfg);
        assert_eq!(set.len(), 1);
        assert!(set.find::<PleMechanism>().is_some());
    }

    #[test]
    fn vb_configures_the_substrate() {
        let mut set = MechanismSet::from_config(&RunConfig::optimized(4));
        let sub = set.configure_substrate();
        assert!(sub.futex.vb_enabled);
        assert!(sub.futex.vb_auto_disable);
        assert!(sub.sched_vb);

        let mut set = MechanismSet::from_config(&RunConfig::vanilla(4));
        let sub = set.configure_substrate();
        assert!(!sub.futex.vb_enabled);
        assert!(!sub.sched_vb);
    }

    #[test]
    fn only_bwd_arms_a_timer() {
        let set = MechanismSet::from_config(&RunConfig::optimized(4));
        let timers = set.timers();
        assert_eq!(timers.len(), 1);
        assert_eq!(timers[0].1, 100_000, "BWD's 100 µs window");

        let set =
            MechanismSet::from_config(&RunConfig::vanilla(4).with_mech(Mechanisms::ple_only()));
        assert!(set.timers().is_empty());
    }

    #[test]
    fn custom_factories_append_to_the_pipeline() {
        struct Nop;
        impl Mechanism for Nop {
            fn name(&self) -> &'static str {
                "nop"
            }
            fn counters(&self) -> MechCounters {
                MechCounters::named("nop")
            }
            fn as_any(&self) -> &dyn Any {
                self
            }
        }
        let cfg = RunConfig::vanilla(4).with_mechanism(|| Box::new(Nop));
        let set = MechanismSet::from_config(&cfg);
        assert_eq!(set.len(), 1);
        assert!(!set.is_empty());
        assert_eq!(set.counters()[0].name, "nop");
        // The config stays cloneable with factories registered.
        let set2 = MechanismSet::from_config(&cfg.clone());
        assert_eq!(set2.len(), 1);
    }
}
