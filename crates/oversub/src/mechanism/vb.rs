//! Virtual blocking (paper §3.1) as a [`Mechanism`].
//!
//! VB's behaviour lives in the kernel substrate — the futex/epoll wait
//! paths and the scheduler's VB-park support — so this mechanism's job is
//! to *configure* that substrate and to account what it does: every
//! VB-park and VB-unpark passes through [`Mechanism::on_block`] /
//! [`Mechanism::on_wake`] and is counted.

use super::{Mechanism, SubstrateConfig};
use oversub_ksync::WaitMode;
use oversub_metrics::MechCounters;
use oversub_task::TaskId;
use std::any::Any;

/// The virtual-blocking mechanism.
#[derive(Debug)]
pub struct VbMechanism {
    auto_disable: bool,
    parks: u64,
    unparks: u64,
    sleeps: u64,
    rescues: u64,
}

impl VbMechanism {
    /// Build VB; `auto_disable` is the paper's §3.1 refinement that falls
    /// back to sleeping when a futex queue is shorter than the online core
    /// count (undersubscribed buckets gain nothing from parking).
    pub fn new(auto_disable: bool) -> Self {
        VbMechanism {
            auto_disable,
            parks: 0,
            unparks: 0,
            sleeps: 0,
            rescues: 0,
        }
    }

    /// Watchdog rescues of parks whose wakeup was lost (VB degraded to a
    /// real wake for those tasks).
    pub fn rescues(&self) -> u64 {
        self.rescues
    }
}

impl Mechanism for VbMechanism {
    fn name(&self) -> &'static str {
        "vb"
    }

    fn configure(&mut self, sub: &mut SubstrateConfig) {
        sub.futex.vb_enabled = true;
        sub.futex.vb_auto_disable = self.auto_disable;
        sub.sched_vb = true;
    }

    fn on_block(&mut self, _cpu: usize, _tid: TaskId, mode: WaitMode) {
        match mode {
            WaitMode::Virtual => self.parks += 1,
            WaitMode::Sleep => self.sleeps += 1,
        }
    }

    fn on_wake(&mut self, _tid: TaskId, mode: WaitMode) {
        if mode == WaitMode::Virtual {
            self.unparks += 1;
        }
    }

    fn on_watchdog_recovery(&mut self, _tid: TaskId) {
        self.rescues += 1;
    }

    fn counters(&self) -> MechCounters {
        MechCounters {
            // Every block-path decision VB made: park vs (auto-disabled)
            // sleep.
            decisions: self.parks + self.sleeps,
            parks: self.parks,
            unparks: self.unparks,
            recoveries: self.rescues,
            ..MechCounters::named("vb")
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
