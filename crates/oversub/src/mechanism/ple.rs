//! Pause-loop exiting as a [`Mechanism`] — the hardware baseline.
//!
//! PLE watches spin segments rather than timer windows: when a new
//! busy-wait segment starts, [`Mechanism::on_spin_segment`] arms a VM exit
//! after the current detection window if PLE can see the loop at all (VM
//! environment + PAUSE in the loop body). On exit the window doubles
//! (modelling the ple_window growth that keeps exit storms bounded) and
//! the engine charges the exit cost — but no skip flag is set, which is
//! exactly why the paper finds PLE barely helps (§5, Figure 13/14).

use super::{Mechanism, SpinExitVerdict};
use oversub_bwd::{ExecEnv, Ple, PleParams};
use oversub_metrics::MechCounters;
use oversub_simcore::SimTime;
use oversub_task::{SpinSig, TaskId};
use std::any::Any;

/// Upper bound on the per-task adaptive window (2 ms).
const MAX_WINDOW_NS: u64 = 2_000_000;

/// The pause-loop-exiting mechanism.
#[derive(Debug)]
pub struct PleMechanism {
    ple: Ple,
    /// Per-task adaptive detection window, grown lazily as task ids
    /// appear.
    window: Vec<u64>,
}

impl PleMechanism {
    /// Build the PLE model.
    pub fn new(params: PleParams) -> Self {
        PleMechanism {
            ple: Ple::new(params),
            window: Vec::new(),
        }
    }

    /// VM exits taken so far.
    pub fn exits(&self) -> u64 {
        self.ple.stats.exits
    }

    fn window_slot(&mut self, tid: TaskId) -> &mut u64 {
        if self.window.len() <= tid.0 {
            self.window.resize(tid.0 + 1, self.ple.params.window_ns);
        }
        &mut self.window[tid.0]
    }
}

impl Mechanism for PleMechanism {
    fn name(&self) -> &'static str {
        "ple"
    }

    fn on_spin_segment(
        &mut self,
        _cpu: usize,
        tid: TaskId,
        sig: &SpinSig,
        env: ExecEnv,
        now: SimTime,
    ) -> Option<SimTime> {
        if !self.ple.can_see(sig, env) {
            return None;
        }
        let w = *self.window_slot(tid);
        Some(now + w)
    }

    fn on_spin_exit(&mut self, _cpu: usize, tid: TaskId) -> SpinExitVerdict {
        self.ple.stats.exits += 1;
        let slot = self.window_slot(tid);
        *slot = (*slot * 2).min(MAX_WINDOW_NS);
        SpinExitVerdict {
            charge_ns: self.ple.params.exit_cost_ns,
            // PLE's key limitation vs BWD: the spinner is not deprioritized.
            set_skip: false,
        }
    }

    fn counters(&self) -> MechCounters {
        MechCounters {
            decisions: self.ple.stats.exits,
            spin_exits: self.ple.stats.exits,
            ..MechCounters::named("ple")
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
