//! Busy-waiting detection (paper §3.2) as a [`Mechanism`].
//!
//! BWD is the mechanism layer's showcase: it owns a per-core 100 µs timer
//! ([`Mechanism::timer_interval_ns`]), inspects the hardware monitoring
//! window on each tick ([`Mechanism::on_timer`]), and when the window
//! matches the spin signature asks the engine to deschedule the runner
//! with the skip flag set. Skip-flag expiry is reported back through
//! [`Mechanism::on_pick`].

use super::{Mechanism, SubstrateConfig, TimerCtx, TimerVerdict};
use oversub_bwd::{BwdParams, BwdStats, Detector};
use oversub_metrics::MechCounters;
use std::any::Any;

/// The busy-waiting-detection mechanism.
#[derive(Debug)]
pub struct BwdMechanism {
    det: Detector,
    skips_set: u64,
    skips_cleared: u64,
}

impl BwdMechanism {
    /// Build BWD around the paper's LBR + PMC detector.
    pub fn new(params: BwdParams) -> Self {
        BwdMechanism {
            det: Detector::new(params),
            skips_set: 0,
            skips_cleared: 0,
        }
    }

    /// The underlying detector's statistics (checks, detections, TP/FP).
    pub fn stats(&self) -> &BwdStats {
        &self.det.stats
    }
}

impl Mechanism for BwdMechanism {
    fn name(&self) -> &'static str {
        "bwd"
    }

    fn configure(&mut self, _sub: &mut SubstrateConfig) {}

    fn timer_interval_ns(&self) -> Option<u64> {
        Some(self.det.params.interval_ns)
    }

    fn on_timer(&mut self, ctx: &mut TimerCtx<'_>) -> TimerVerdict {
        let detected = self.det.check_window(ctx.hw);
        ctx.hw.new_window();
        let deschedule = detected && ctx.has_current;
        if deschedule {
            self.det.classify_detection(ctx.real_spin);
            self.skips_set += 1;
        }
        TimerVerdict {
            charge_ns: self.det.params.check_cost_ns,
            deschedule,
            set_skip: true,
        }
    }

    fn on_pick(&mut self, _cpu: usize, skips_released: u64) {
        self.skips_cleared += skips_released;
    }

    fn counters(&self) -> MechCounters {
        MechCounters {
            decisions: self.det.stats.detections,
            skips_set: self.skips_set,
            skips_cleared: self.skips_cleared,
            timer_checks: self.det.stats.checks,
            ..MechCounters::named("bwd")
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
