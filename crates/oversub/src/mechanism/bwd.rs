//! Busy-waiting detection (paper §3.2) as a [`Mechanism`].
//!
//! BWD is the mechanism layer's showcase: it owns a per-core 100 µs timer
//! ([`Mechanism::timer_interval_ns`]), inspects the hardware monitoring
//! window on each tick ([`Mechanism::on_timer`]), and when the window
//! matches the spin signature asks the engine to deschedule the runner
//! with the skip flag set. Skip-flag expiry is reported back through
//! [`Mechanism::on_pick`].
//!
//! Graceful degradation: with `adaptive_backoff` armed (auto-enabled when
//! a chaos run injects sensor noise), BWD tracks each core's observed
//! false-positive rate — the kernel-space proxy is "the 'spinner' I
//! descheduled made immediate progress when it came back", which the
//! simulator models with the classification counter. A core whose FP rate
//! crosses the threshold first *widens* its detection window (inspecting
//! only every Nth tick, so a detection needs N windows' worth of
//! uninterrupted spin evidence), and on a second trip disables detection
//! on that core entirely. Each escalation is a recovery in
//! [`MechCounters::recoveries`].

use super::{Mechanism, SubstrateConfig, TimerCtx, TimerVerdict};
use oversub_bwd::{BwdParams, BwdStats, Detector};
use oversub_metrics::MechCounters;
use std::any::Any;

/// Window-widening factor of the first backoff step.
const BACKOFF_STRIDE: u64 = 4;

/// Per-core adaptive-backoff state.
#[derive(Clone, Copy, Debug, Default)]
struct CoreBackoff {
    /// Monitoring ticks seen (drives the inspection stride).
    ticks: u64,
    /// Inspect only every `stride`-th tick (0 = not yet initialized = 1).
    stride: u64,
    /// Deschedules taken on this core since the last escalation.
    detections: u64,
    /// Of those, how many hit a thread that was not really spinning.
    false_positives: u64,
    /// Detection permanently disabled on this core.
    disabled: bool,
}

/// The busy-waiting-detection mechanism.
#[derive(Debug)]
pub struct BwdMechanism {
    det: Detector,
    skips_set: u64,
    skips_cleared: u64,
    /// Lazily grown per-core backoff state (empty unless adaptive).
    backoff: Vec<CoreBackoff>,
    /// Backoff escalations taken (window widenings + core disables).
    recoveries: u64,
}

impl BwdMechanism {
    /// Build BWD around the paper's LBR + PMC detector.
    pub fn new(params: BwdParams) -> Self {
        BwdMechanism {
            det: Detector::new(params),
            skips_set: 0,
            skips_cleared: 0,
            backoff: Vec::new(),
            recoveries: 0,
        }
    }

    /// The underlying detector's statistics (checks, detections, TP/FP).
    pub fn stats(&self) -> &BwdStats {
        &self.det.stats
    }

    /// Backoff escalations taken so far (0 without `adaptive_backoff`).
    pub fn recoveries(&self) -> u64 {
        self.recoveries
    }

    /// True when adaptive backoff has disabled detection on `cpu`.
    pub fn core_disabled(&self, cpu: usize) -> bool {
        self.backoff.get(cpu).is_some_and(|c| c.disabled)
    }

    fn core(&mut self, cpu: usize) -> &mut CoreBackoff {
        if self.backoff.len() <= cpu {
            self.backoff.resize(cpu + 1, CoreBackoff::default());
        }
        let c = &mut self.backoff[cpu];
        if c.stride == 0 {
            c.stride = 1;
        }
        c
    }

    /// FP rate crossed the threshold: widen the window, then disable.
    fn escalate(&mut self, cpu: usize) {
        let c = &mut self.backoff[cpu];
        if c.stride == 1 {
            c.stride = BACKOFF_STRIDE;
        } else {
            c.disabled = true;
        }
        c.detections = 0;
        c.false_positives = 0;
        self.recoveries += 1;
    }
}

impl Mechanism for BwdMechanism {
    fn name(&self) -> &'static str {
        "bwd"
    }

    fn configure(&mut self, _sub: &mut SubstrateConfig) {}

    fn timer_interval_ns(&self) -> Option<u64> {
        Some(self.det.params.interval_ns)
    }

    fn on_timer(&mut self, ctx: &mut TimerCtx<'_>) -> TimerVerdict {
        let adaptive = self.det.params.adaptive_backoff;
        if adaptive {
            let c = self.core(ctx.cpu);
            c.ticks += 1;
            if c.disabled {
                // Detection is off on this core: no inspection, no charge.
                ctx.hw.new_window();
                return TimerVerdict::default();
            }
            if !c.ticks.is_multiple_of(c.stride) {
                // Widened window: let evidence accumulate across ticks.
                return TimerVerdict::default();
            }
        }
        // Classify the raw window, apply injected sensor corruption, then
        // record the (possibly perturbed) verdict in the stats.
        let raw = self.det.check_window_quiet(ctx.hw);
        let detected = raw != ctx.sensor_flip;
        self.det.note_check(detected);
        ctx.hw.new_window();
        let deschedule = detected && ctx.has_current;
        if deschedule {
            self.det.classify_detection(ctx.real_spin);
            self.skips_set += 1;
            if adaptive {
                let min = self.det.params.backoff_min_detections;
                let threshold = self.det.params.backoff_fp_threshold;
                let c = self.core(ctx.cpu);
                c.detections += 1;
                c.false_positives += u64::from(!ctx.real_spin);
                if c.detections >= min && c.false_positives as f64 > threshold * c.detections as f64
                {
                    self.escalate(ctx.cpu);
                }
            }
        }
        TimerVerdict {
            charge_ns: self.det.params.check_cost_ns,
            deschedule,
            set_skip: true,
        }
    }

    /// Idle-quiet tick: mirrors [`BwdMechanism::on_timer`] with
    /// `has_current = false`, `sensor_flip = false`, and an untouched
    /// window. An untouched window's LBR ring is not full, so the raw
    /// classification is always "not spinning": the tick reduces to the
    /// backoff bookkeeping plus one recorded check, and clearing the
    /// window would be a no-op — which is exactly what lets the engine
    /// skip building a [`TimerCtx`] for it.
    fn on_timer_idle_quiet(&mut self, cpu: usize) -> Option<u64> {
        if self.det.params.adaptive_backoff {
            let c = self.core(cpu);
            c.ticks += 1;
            if c.disabled || !c.ticks.is_multiple_of(c.stride) {
                // Disabled core or widened-window skip: no inspection,
                // no charge (the full path's window clear is a no-op on
                // an untouched window).
                return Some(0);
            }
        }
        self.det.note_check(false);
        Some(self.det.params.check_cost_ns)
    }

    /// Without adaptive backoff an idle-quiet tick is a pure constant:
    /// charge the check cost, record one quiet check. With backoff the
    /// per-core stride counters advance every tick, so the constant path
    /// must stay off and [`BwdMechanism::on_timer_idle_quiet`] handles
    /// each tick individually.
    fn idle_quiet_constant(&self) -> Option<u64> {
        (!self.det.params.adaptive_backoff).then_some(self.det.params.check_cost_ns)
    }

    fn note_idle_checks(&mut self, n: u64) {
        // `Detector::note_check(false)` is exactly `stats.checks += 1`.
        self.det.stats.checks += n;
    }

    fn on_pick(&mut self, _cpu: usize, skips_released: u64) {
        self.skips_cleared += skips_released;
    }

    fn counters(&self) -> MechCounters {
        MechCounters {
            decisions: self.det.stats.detections,
            skips_set: self.skips_set,
            skips_cleared: self.skips_cleared,
            timer_checks: self.det.stats.checks,
            recoveries: self.recoveries,
            ..MechCounters::named("bwd")
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oversub_hw::CoreHw;
    use oversub_simcore::SimTime;

    fn spin_hw() -> CoreHw {
        let mut hw = CoreHw::new();
        hw.note_spin(0x5000, 0x4FF0, 33_000, 4);
        hw
    }

    fn tick(m: &mut BwdMechanism, hw: &mut CoreHw, real_spin: bool, flip: bool) -> TimerVerdict {
        let mut ctx = TimerCtx {
            cpu: 0,
            now: SimTime::ZERO,
            hw,
            has_current: true,
            real_spin,
            sensor_flip: flip,
        };
        m.on_timer(&mut ctx)
    }

    #[test]
    fn sensor_flip_inverts_classification() {
        let params = BwdParams {
            enabled: true,
            ..BwdParams::default()
        };
        // A pure spin window flipped to "work": no deschedule.
        let mut m = BwdMechanism::new(params);
        let mut hw = spin_hw();
        assert!(!tick(&mut m, &mut hw, true, true).deschedule);
        // A work window flipped to "spin": descheduled (false positive).
        let mut m = BwdMechanism::new(params);
        let mut hw = CoreHw::new();
        assert!(tick(&mut m, &mut hw, false, true).deschedule);
        assert_eq!(m.stats().false_positives, 1);
    }

    #[test]
    fn backoff_widens_then_disables_a_noisy_core() {
        let params = BwdParams {
            enabled: true,
            adaptive_backoff: true,
            backoff_min_detections: 4,
            backoff_fp_threshold: 0.5,
            ..BwdParams::default()
        };
        let mut m = BwdMechanism::new(params);
        // Feed pure false positives (work windows flipped to spin) until
        // the first escalation: the stride widens.
        let mut fired = 0;
        for _ in 0..4 {
            let mut hw = CoreHw::new();
            fired += u64::from(tick(&mut m, &mut hw, false, true).deschedule);
        }
        assert_eq!(fired, 4);
        assert_eq!(m.recoveries(), 1, "first trip widens the window");
        assert!(!m.core_disabled(0));
        // With stride 4 only every 4th tick inspects; keep feeding noise
        // until the second trip disables the core.
        for _ in 0..64 {
            let mut hw = CoreHw::new();
            tick(&mut m, &mut hw, false, true);
            if m.core_disabled(0) {
                break;
            }
        }
        assert!(m.core_disabled(0), "second trip disables the core");
        assert_eq!(m.recoveries(), 2);
        // A disabled core never deschedules and charges nothing.
        let mut hw = spin_hw();
        let v = tick(&mut m, &mut hw, true, false);
        assert!(!v.deschedule);
        assert_eq!(v.charge_ns, 0);
    }

    #[test]
    fn clean_runs_never_back_off() {
        let params = BwdParams {
            enabled: true,
            adaptive_backoff: true,
            ..BwdParams::default()
        };
        let mut m = BwdMechanism::new(params);
        for _ in 0..100 {
            let mut hw = spin_hw();
            tick(&mut m, &mut hw, true, false);
        }
        assert_eq!(m.recoveries(), 0);
        assert!(!m.core_disabled(0));
    }
}
