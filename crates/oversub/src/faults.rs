//! Deterministic fault injection and the liveness watchdog.
//!
//! The paper's mechanisms are kernel machinery that fails *silently*:
//! virtual blocking turns a lost flag-clear into a permanently parked
//! thread, and BWD's LBR/PMC heuristic can misclassify real work as
//! spinning (§4.2 reasons explicitly about false positives/negatives).
//! This module lets a run perturb the simulation at exactly the mechanism
//! hook boundaries — wake delivery, the monitoring timer, the sensor
//! window, slice arming, and core elasticity — while staying bit-
//! reproducible: the injector draws from its own [`SimRng`] substream
//! forked off the run seed, and a zero-rate plan performs **zero** draws,
//! schedules zero events, and allocates zero state, so it is byte-
//! identical to having no fault layer at all (the golden test in
//! `tests/chaos.rs` checks this).
//!
//! The watchdog half ([`WatchdogParams`]) is the defence: a periodic
//! invariant sweep over the scheduler/futex/epoll state that detects
//! lost-wakeup orphans, starvation, runqueue inconsistencies, and global
//! no-progress hangs, surfacing each as a structured
//! [`oversub_metrics::Diagnostic`] in `RunReport.diagnostics` — never a
//! panic, never a silent hang.

use oversub_simcore::SimRng;
use std::fmt;

/// RNG substream id of the fault injector (tasks use streams `i + 1`, so
/// a large constant keeps the injector's draws off every task stream).
const FAULT_STREAM: u64 = 0xFAB1_7000_0000_0001;

/// An elastic-revocation storm: at each fault tick, with probability
/// `prob`, yank the online core count to a uniformly drawn value in
/// `[min_cores, ncpu]`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RevocationStorm {
    /// Per-tick probability of a revocation event.
    pub prob: f64,
    /// Lower bound of the drawn online-core count (clamped to >= 1).
    pub min_cores: usize,
}

/// A deterministic fault schedule. All rates default to zero; a
/// default/zero plan injects nothing and adds no state to the run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Probability that a VB unpark is lost: the futex wake dequeues the
    /// waiter but the flag-clear never lands, leaving the task parked
    /// with no pending waker (the classic lost-wakeup kernel bug).
    pub lost_wakeup_prob: f64,
    /// Per-fault-tick probability of a spurious wakeup: one parked
    /// mutex waiter is woken without a release (POSIX-legal; the waiter
    /// re-checks and re-parks).
    pub spurious_wakeup_prob: f64,
    /// Probability that a BWD monitoring tick is dropped (the timer
    /// re-arms but the window inspection never happens).
    pub timer_drop_prob: f64,
    /// Maximum uniform jitter added to each monitoring-timer re-arm (ns).
    pub timer_jitter_ns: u64,
    /// Probability that the LBR/PMC window classification is flipped
    /// (spin reads as work, work reads as spin) on one inspection.
    pub sensor_noise_prob: f64,
    /// Maximum uniform delay added when arming a slice-expiry event (ns).
    pub slice_delay_ns: u64,
    /// Elastic core revocation storms.
    pub revocation_storm: Option<RevocationStorm>,
    /// Period of the fault tick that drives spurious wakeups and
    /// revocation storms.
    pub tick_interval_ns: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            lost_wakeup_prob: 0.0,
            spurious_wakeup_prob: 0.0,
            timer_drop_prob: 0.0,
            timer_jitter_ns: 0,
            sensor_noise_prob: 0.0,
            slice_delay_ns: 0,
            revocation_storm: None,
            tick_interval_ns: 1_000_000,
        }
    }
}

impl FaultPlan {
    /// True when any fault is configured; a disabled plan must leave the
    /// run bit-identical to having no fault layer.
    pub fn enabled(&self) -> bool {
        self.lost_wakeup_prob > 0.0
            || self.spurious_wakeup_prob > 0.0
            || self.timer_drop_prob > 0.0
            || self.timer_jitter_ns > 0
            || self.sensor_noise_prob > 0.0
            || self.slice_delay_ns > 0
            || self.revocation_storm.is_some()
    }

    /// True when the plan needs the periodic fault tick event.
    pub fn needs_tick(&self) -> bool {
        self.spurious_wakeup_prob > 0.0 || self.revocation_storm.is_some()
    }

    /// Set the lost-wakeup probability.
    pub fn lost_wakeups(mut self, prob: f64) -> Self {
        self.lost_wakeup_prob = prob;
        self
    }

    /// Set the spurious-wakeup probability (per fault tick).
    pub fn spurious_wakeups(mut self, prob: f64) -> Self {
        self.spurious_wakeup_prob = prob;
        self
    }

    /// Set the monitoring-timer drop probability.
    pub fn timer_drops(mut self, prob: f64) -> Self {
        self.timer_drop_prob = prob;
        self
    }

    /// Set the maximum monitoring-timer jitter.
    pub fn timer_jitter(mut self, ns: u64) -> Self {
        self.timer_jitter_ns = ns;
        self
    }

    /// Set the sensor-noise (classification flip) probability.
    pub fn sensor_noise(mut self, prob: f64) -> Self {
        self.sensor_noise_prob = prob;
        self
    }

    /// Set the maximum slice-arming delay.
    pub fn slice_delays(mut self, ns: u64) -> Self {
        self.slice_delay_ns = ns;
        self
    }

    /// Enable revocation storms.
    pub fn revocation_storms(mut self, prob: f64, min_cores: usize) -> Self {
        self.revocation_storm = Some(RevocationStorm { prob, min_cores });
        self
    }

    /// Validate the plan: every probability must be a finite value in
    /// `[0, 1]` and the tick interval non-zero when the tick is needed.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("fault lost_wakeup_prob", self.lost_wakeup_prob),
            ("fault spurious_wakeup_prob", self.spurious_wakeup_prob),
            ("fault timer_drop_prob", self.timer_drop_prob),
            ("fault sensor_noise_prob", self.sensor_noise_prob),
            (
                "fault revocation storm prob",
                self.revocation_storm.map_or(0.0, |s| s.prob),
            ),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        if self.needs_tick() && self.tick_interval_ns == 0 {
            return Err("fault tick_interval_ns must be non-zero".into());
        }
        Ok(())
    }
}

/// Injection counters, reported alongside the run for observability.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// VB unparks swallowed.
    pub lost_wakeups: u64,
    /// Spurious wakeups delivered.
    pub spurious_wakeups: u64,
    /// Monitoring ticks dropped.
    pub dropped_ticks: u64,
    /// Monitoring ticks jittered.
    pub jittered_ticks: u64,
    /// Sensor classifications flipped.
    pub sensor_flips: u64,
    /// Slice armings delayed.
    pub delayed_slices: u64,
    /// Revocation storms fired.
    pub storms: u64,
}

/// The run's fault injector: owns the plan, a dedicated RNG substream,
/// and the injection counters. Constructed only when the plan is enabled,
/// so zero-rate runs carry no injector at all.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    /// The fault schedule.
    pub plan: FaultPlan,
    rng: SimRng,
    /// What was actually injected.
    pub counters: FaultCounters,
}

impl FaultInjector {
    /// Build an injector whose draws are keyed off the run seed but
    /// independent of every task substream.
    pub fn new(plan: FaultPlan, base_rng: &SimRng) -> Self {
        FaultInjector {
            plan,
            rng: base_rng.fork(FAULT_STREAM),
            counters: FaultCounters::default(),
        }
    }

    /// Should this VB unpark be lost? Draws only when the rate is set.
    pub fn lose_wakeup(&mut self) -> bool {
        if self.plan.lost_wakeup_prob <= 0.0 {
            return false;
        }
        let hit = self.rng.gen_bool(self.plan.lost_wakeup_prob);
        self.counters.lost_wakeups += u64::from(hit);
        hit
    }

    /// Should this fault tick deliver a spurious wakeup?
    pub fn spurious_wakeup(&mut self) -> bool {
        if self.plan.spurious_wakeup_prob <= 0.0 {
            return false;
        }
        self.rng.gen_bool(self.plan.spurious_wakeup_prob)
    }

    /// Pick a victim index in `[0, n)` (e.g. which parked waiter the
    /// spurious wake hits).
    pub fn pick_victim(&mut self, n: usize) -> usize {
        debug_assert!(n > 0, "pick_victim needs a non-empty candidate set");
        self.rng.gen_index(n)
    }

    /// Should this monitoring tick be dropped?
    pub fn drop_timer(&mut self) -> bool {
        if self.plan.timer_drop_prob <= 0.0 {
            return false;
        }
        let hit = self.rng.gen_bool(self.plan.timer_drop_prob);
        self.counters.dropped_ticks += u64::from(hit);
        hit
    }

    /// Jitter to add to this monitoring-timer re-arm (0 when unset).
    pub fn timer_jitter(&mut self) -> u64 {
        if self.plan.timer_jitter_ns == 0 {
            return 0;
        }
        let j = self.rng.gen_range(self.plan.timer_jitter_ns + 1);
        self.counters.jittered_ticks += u64::from(j > 0);
        j
    }

    /// Should this window inspection's classification be flipped?
    pub fn flip_sensor(&mut self) -> bool {
        if self.plan.sensor_noise_prob <= 0.0 {
            return false;
        }
        let hit = self.rng.gen_bool(self.plan.sensor_noise_prob);
        self.counters.sensor_flips += u64::from(hit);
        hit
    }

    /// Delay to add to this slice arming (0 when unset).
    pub fn slice_delay(&mut self) -> u64 {
        if self.plan.slice_delay_ns == 0 {
            return 0;
        }
        let d = self.rng.gen_range(self.plan.slice_delay_ns + 1);
        self.counters.delayed_slices += u64::from(d > 0);
        d
    }

    /// If a revocation storm fires this tick, the new online core count.
    pub fn storm_cores(&mut self, ncpu: usize) -> Option<usize> {
        let storm = self.plan.revocation_storm?;
        if storm.prob <= 0.0 || !self.rng.gen_bool(storm.prob) {
            return None;
        }
        self.counters.storms += 1;
        let lo = storm.min_cores.clamp(1, ncpu);
        Some(self.rng.gen_range_inclusive(lo as u64, ncpu as u64) as usize)
    }

    /// Record a spurious wakeup that was actually delivered (the draw in
    /// [`FaultInjector::spurious_wakeup`] may find no eligible victim).
    pub fn note_spurious_delivered(&mut self) {
        self.counters.spurious_wakeups += 1;
    }
}

/// Liveness watchdog configuration. `None` in the run config disarms the
/// watchdog entirely (no events, no per-CPU state).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WatchdogParams {
    /// Sweep period.
    pub check_interval_ns: u64,
    /// A VB park older than this with no pending waker is treated as a
    /// lost wakeup and rescued (VB degrades to a real wake).
    pub park_timeout_ns: u64,
    /// A runnable task off-CPU longer than this is reported as starved.
    pub starvation_bound_ns: u64,
    /// If no task makes forward progress (useful or spin time) for this
    /// long, the run is halted with a `no_progress` diagnostic.
    pub hang_timeout_ns: u64,
    /// Hard cap on recorded diagnostics (the first violations matter;
    /// a pathological run must not allocate unboundedly).
    pub max_diagnostics: usize,
}

impl Default for WatchdogParams {
    fn default() -> Self {
        WatchdogParams {
            check_interval_ns: 1_000_000,
            park_timeout_ns: 10_000_000,
            starvation_bound_ns: 500_000_000,
            hang_timeout_ns: 100_000_000,
            max_diagnostics: 64,
        }
    }
}

impl WatchdogParams {
    /// Validate against the scheduler's slice, which bounds how long a
    /// healthy park legitimately lasts.
    pub fn validate(&self, min_slice_ns: u64) -> Result<(), String> {
        if self.check_interval_ns == 0 {
            return Err("watchdog check_interval_ns must be non-zero".into());
        }
        if self.park_timeout_ns < min_slice_ns {
            return Err(format!(
                "watchdog park_timeout_ns ({}) is shorter than a scheduler slice ({min_slice_ns}): \
                 every healthy park would be flagged",
                self.park_timeout_ns
            ));
        }
        if self.starvation_bound_ns == 0 {
            return Err("watchdog starvation_bound_ns must be non-zero".into());
        }
        if self.hang_timeout_ns == 0 {
            return Err("watchdog hang_timeout_ns must be non-zero".into());
        }
        Ok(())
    }
}

/// A typed engine error: the failure modes that are reachable from bad
/// input (configuration, baselines) rather than programming bugs. The
/// panicking entry points (`run` & friends) render these with a readable
/// message; `try_run` surfaces them to the caller.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The run configuration failed validation.
    InvalidConfig(String),
    /// The engine detected an internal inconsistency it could not degrade
    /// around (with the watchdog armed these become diagnostics instead).
    Internal(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidConfig(msg) => write!(f, "invalid RunConfig: {msg}"),
            EngineError::Internal(msg) => write!(f, "engine invariant violated: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_disabled_and_valid() {
        let p = FaultPlan::default();
        assert!(!p.enabled());
        assert!(!p.needs_tick());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn builders_enable_the_plan() {
        assert!(FaultPlan::default().lost_wakeups(0.1).enabled());
        assert!(FaultPlan::default().timer_jitter(50_000).enabled());
        assert!(FaultPlan::default().slice_delays(1_000).enabled());
        let p = FaultPlan::default().revocation_storms(0.05, 2);
        assert!(p.enabled() && p.needs_tick());
        assert!(FaultPlan::default().spurious_wakeups(0.2).needs_tick());
        assert!(!FaultPlan::default().sensor_noise(0.2).needs_tick());
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        assert!(FaultPlan::default().lost_wakeups(1.5).validate().is_err());
        assert!(FaultPlan::default().sensor_noise(-0.1).validate().is_err());
        assert!(FaultPlan::default()
            .timer_drops(f64::NAN)
            .validate()
            .is_err());
        assert!(FaultPlan::default()
            .revocation_storms(2.0, 1)
            .validate()
            .is_err());
        let mut p = FaultPlan::default().spurious_wakeups(0.1);
        p.tick_interval_ns = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn zero_rate_injector_draws_nothing() {
        let base = SimRng::new(42);
        let mut a = FaultInjector::new(FaultPlan::default(), &base);
        assert!(!a.lose_wakeup());
        assert!(!a.spurious_wakeup());
        assert!(!a.drop_timer());
        assert_eq!(a.timer_jitter(), 0);
        assert!(!a.flip_sensor());
        assert_eq!(a.slice_delay(), 0);
        assert_eq!(a.storm_cores(8), None);
        // The RNG state is untouched: the next draw matches a fresh fork.
        let mut fresh = base.fork(FAULT_STREAM);
        assert_eq!(a.rng.next_u64(), fresh.next_u64());
        assert_eq!(a.counters, FaultCounters::default());
    }

    #[test]
    fn injector_is_deterministic() {
        let base = SimRng::new(7);
        let plan = FaultPlan::default()
            .lost_wakeups(0.5)
            .timer_jitter(10_000)
            .sensor_noise(0.3);
        let mut a = FaultInjector::new(plan.clone(), &base);
        let mut b = FaultInjector::new(plan, &base);
        for _ in 0..200 {
            assert_eq!(a.lose_wakeup(), b.lose_wakeup());
            assert_eq!(a.timer_jitter(), b.timer_jitter());
            assert_eq!(a.flip_sensor(), b.flip_sensor());
        }
        assert_eq!(a.counters, b.counters);
    }

    #[test]
    fn storm_respects_core_bounds() {
        let base = SimRng::new(3);
        let mut inj = FaultInjector::new(FaultPlan::default().revocation_storms(1.0, 2), &base);
        for _ in 0..100 {
            let cores = inj.storm_cores(8).expect("prob 1.0 always fires");
            assert!((2..=8).contains(&cores));
        }
        assert_eq!(inj.counters.storms, 100);
    }

    #[test]
    fn watchdog_validation() {
        let wd = WatchdogParams::default();
        assert!(wd.validate(3_000_000).is_ok());
        assert!(wd.validate(20_000_000).is_err(), "timeout under a slice");
        let zero_starve = WatchdogParams {
            starvation_bound_ns: 0,
            ..wd
        };
        assert!(zero_starve.validate(1).is_err());
        let zero_interval = WatchdogParams {
            check_interval_ns: 0,
            ..wd
        };
        assert!(zero_interval.validate(1).is_err());
    }

    #[test]
    fn engine_error_renders_readably() {
        let e = EngineError::InvalidConfig("probability out of range".into());
        assert!(e.to_string().contains("invalid RunConfig"));
        let e = EngineError::Internal("runqueue audit failed".into());
        assert!(e.to_string().contains("invariant"));
    }
}
