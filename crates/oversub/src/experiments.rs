//! Experiment drivers: one function per figure and table of the paper.
//!
//! Each driver runs the required simulation arms and renders the same rows
//! or series the paper reports as a [`TextTable`] (also exportable as
//! CSV). Bench binaries in `crates/bench` are thin wrappers around these.
//!
//! All drivers accept an [`ExpOpts`] whose `scale` shrinks per-run phase
//! counts proportionally in every arm — relative results are preserved
//! while quick runs finish in seconds.

use crate::config::{MachineSpec, Mechanisms, RunConfig};
use crate::engine::run_labelled;
use oversub_bwd::ExecEnv;
use oversub_hw::AccessPattern;
use oversub_locks::{MutexKind, SpinPolicy};
use oversub_metrics::Summary;
use oversub_metrics::{RunReport, TextTable};
use oversub_simcore::{SimTime, MICROS, MILLIS};
use oversub_workloads::forkjoin::ForkJoin;
use oversub_workloads::memcached::Memcached;
use oversub_workloads::micro::{
    ArrayWalk, ComputeYield, Primitive, PrimitiveStress, SpinlockStress, TpProbe,
};
use oversub_workloads::pipeline::{SpinPipeline, WaitFlavor};
use oversub_workloads::skeletons::{BenchProfile, Skeleton};
use oversub_workloads::webserving::WebServing;
use oversub_workloads::Workload;

/// Options shared by all experiment drivers.
#[derive(Clone, Copy, Debug)]
pub struct ExpOpts {
    /// Phase-count scale (1.0 = paper-sized runs).
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl ExpOpts {
    /// Fast runs for CI / smoke testing.
    pub fn quick() -> Self {
        ExpOpts {
            scale: 0.08,
            seed: 42,
        }
    }

    /// Full-sized runs for the bench harness.
    pub fn full() -> Self {
        ExpOpts {
            scale: 0.5,
            seed: 42,
        }
    }
}

/// Run a benchmark skeleton on the paper's 8-core container (4+4 across
/// two sockets) with the given thread count and mechanisms.
pub fn run_skeleton(
    name: &str,
    threads: usize,
    machine: MachineSpec,
    mech: Mechanisms,
    opts: ExpOpts,
) -> RunReport {
    let profile = BenchProfile::by_name(name).expect("known benchmark");
    let mut wl = Skeleton::scaled(profile, threads, opts.scale).with_salt(opts.seed);
    let cfg = RunConfig::vanilla(8)
        .with_machine(machine)
        .with_mech(mech)
        .with_seed(opts.seed);
    run_labelled(&mut wl, &cfg, &format!("{name}/{threads}T"))
}

fn fmt_x(v: f64) -> String {
    format!("{v:.2}")
}

fn fmt_s(r: &RunReport) -> String {
    format!("{:.3}", r.makespan_secs())
}

// ---------------------------------------------------------------------
// Figure 1: the oversubscription survey
// ---------------------------------------------------------------------

/// Figure 1: normalized execution time of all 32 benchmarks with 8T and
/// 32T on 8 cores (vanilla Linux).
pub fn fig01_survey(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new(["benchmark", "group", "8T", "32T(vanilla)", "paper-32T"]);
    for p in BenchProfile::all() {
        let base = run_skeleton(
            p.name,
            8,
            MachineSpec::Paper8Cores,
            Mechanisms::vanilla(),
            opts,
        );
        let over = run_skeleton(
            p.name,
            32,
            MachineSpec::Paper8Cores,
            Mechanisms::vanilla(),
            opts,
        );
        t.row([
            p.name.to_string(),
            format!("{:?}", p.group),
            "1.00".to_string(),
            fmt_x(over.normalized_to(&base)),
            fmt_x(p.paper_fig1_slowdown),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 2: direct cost of context switching
// ---------------------------------------------------------------------

/// Figure 2: execution time of the compute(+atomic) microbenchmark with
/// 1..=8 threads on one core, normalized to one thread.
pub fn fig02_direct_cost(opts: ExpOpts) -> TextTable {
    let total = ((400.0 * opts.scale).max(40.0) as u64) * MILLIS;
    let mut t = TextTable::new(["threads", "pure-compute", "with-atomic"]);
    let run1 = |wl: &mut dyn Workload| {
        let cfg = RunConfig::vanilla(1).with_seed(opts.seed);
        run_labelled(wl, &cfg, "fig2")
    };
    let base_a = run1(&mut ComputeYield::fig2a(1, total)).makespan_ns as f64;
    let base_b = run1(&mut ComputeYield::fig2b(1, total)).makespan_ns as f64;
    for n in 1..=8usize {
        let a = run1(&mut ComputeYield::fig2a(n, total)).makespan_ns as f64;
        let b = run1(&mut ComputeYield::fig2b(n, total)).makespan_ns as f64;
        t.row([n.to_string(), fmt_x(a / base_a), fmt_x(b / base_b)]);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 3: synchronization intervals
// ---------------------------------------------------------------------

/// Figure 3: histogram of the benchmarks' synchronization intervals
/// (100 µs bins; the last bin collects everything above 1 ms).
pub fn fig03_sync_intervals() -> TextTable {
    let mut bins = [0usize; 11];
    for p in BenchProfile::all() {
        let us = p.sync_interval_ns / MICROS;
        let idx = ((us / 100) as usize).min(10);
        bins[idx] += 1;
    }
    let mut t = TextTable::new(["interval(us)", "programs"]);
    for (i, &count) in bins.iter().enumerate() {
        let label = if i == 10 {
            ">1000".to_string()
        } else {
            format!("{}-{}", i * 100, (i + 1) * 100)
        };
        t.row([label, count.to_string()]);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 4: indirect cost of context switching
// ---------------------------------------------------------------------

/// Figure 4: indirect cost per context switch (µs; negative = benefit) of
/// two threads sharing one core vs one thread, across working-set sizes
/// and the four access patterns.
pub fn fig04_indirect_cost(opts: ExpOpts) -> TextTable {
    let sizes: Vec<u64> = (17..=27).map(|s| 1u64 << s).collect(); // 128KB..128MB
    let mut t = TextTable::new(["array", "seq-r", "seq-rmw", "rnd-r", "rnd-rmw"]);
    let passes = ((24.0 * opts.scale).max(4.0)) as u64;
    for &ws in &sizes {
        let mut row = vec![if ws >= (1 << 20) {
            format!("{}MB", ws >> 20)
        } else {
            format!("{}KB", ws >> 10)
        }];
        for pattern in AccessPattern::ALL {
            let run = |threads: usize| {
                let mut wl = ArrayWalk {
                    threads,
                    total_ws: ws,
                    pattern,
                    passes,
                };
                let cfg = RunConfig::vanilla(1).with_seed(opts.seed);
                run_labelled(&mut wl, &cfg, "fig4")
            };
            let serial = run(1);
            let over = run(2);
            let ncs = over.cpus.context_switches.max(1);
            let cost_us =
                (over.makespan_ns as f64 - serial.makespan_ns as f64) / ncs as f64 / 1_000.0;
            row.push(format!("{cost_us:.2}"));
        }
        t.row(row);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 9 / Table 1: virtual blocking on the blocking benchmarks
// ---------------------------------------------------------------------

/// Arms of the Figure 9 experiment on one machine shape.
fn fig09_arms(
    name: &str,
    machine: MachineSpec,
    opts: ExpOpts,
) -> (RunReport, RunReport, RunReport) {
    let base = run_skeleton(name, 8, machine.clone(), Mechanisms::vanilla(), opts);
    let over = run_skeleton(name, 32, machine.clone(), Mechanisms::vanilla(), opts);
    let opt = run_skeleton(name, 32, machine, Mechanisms::optimized(), opts);
    (base, over, opt)
}

/// Figure 9: normalized execution time of the 13 blocking benchmarks under
/// {8T vanilla, 32T vanilla, 32T optimized} on 8 cores and on 8
/// hyperthreads of 4 cores.
pub fn fig09_vb_blocking(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new([
        "benchmark",
        "8T(van-8c)",
        "32T(van-8c)",
        "32T(opt-8c)",
        "8T(van-8ht)",
        "32T(van-8ht)",
        "32T(opt-8ht)",
    ]);
    for p in BenchProfile::fig9_set() {
        let (b8, o8, x8) = fig09_arms(p.name, MachineSpec::Paper8Cores, opts);
        let (bh, oh, xh) = fig09_arms(p.name, MachineSpec::Paper8Hyperthreads, opts);
        t.row([
            p.name.to_string(),
            "1.00".into(),
            fmt_x(o8.normalized_to(&b8)),
            fmt_x(x8.normalized_to(&b8)),
            "1.00".into(),
            fmt_x(oh.normalized_to(&bh)),
            fmt_x(xh.normalized_to(&bh)),
        ]);
    }
    t
}

/// Table 1: CPU utilization and migration counts for the 13 blocking
/// benchmarks under {8T, 32T, 32T optimized}.
pub fn table1_runtime_stats(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new([
        "app",
        "util-8T",
        "util-32T",
        "util-Opt",
        "in-node-8T",
        "in-node-32T",
        "in-node-Opt",
        "cross-8T",
        "cross-32T",
        "cross-Opt",
    ]);
    for p in BenchProfile::fig9_set() {
        let (b, o, x) = fig09_arms(p.name, MachineSpec::Paper8Cores, opts);
        t.row([
            p.name.to_string(),
            format!("{:.0}", b.cpu_utilization_pct()),
            format!("{:.0}", o.cpu_utilization_pct()),
            format!("{:.0}", x.cpu_utilization_pct()),
            b.tasks.migrations_local.to_string(),
            o.tasks.migrations_local.to_string(),
            x.tasks.migrations_local.to_string(),
            b.tasks.migrations_remote.to_string(),
            o.tasks.migrations_remote.to_string(),
            x.tasks.migrations_remote.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 10: VB on the pthreads primitives
// ---------------------------------------------------------------------

fn primitive_speedup(primitive: Primitive, threads: usize, cores: usize, opts: ExpOpts) -> f64 {
    let rounds = ((10_000.0 * opts.scale).max(300.0)) as usize;
    let mk = || PrimitiveStress {
        threads,
        rounds,
        primitive,
        work_ns: 2_000,
    };
    let cfg = |mech: Mechanisms| {
        RunConfig::vanilla(cores)
            .with_machine(MachineSpec::PaperN(cores))
            .with_mech(mech)
            .with_seed(opts.seed)
    };
    let vanilla = run_labelled(&mut mk(), &cfg(Mechanisms::vanilla()), "vanilla");
    let vb = run_labelled(&mut mk(), &cfg(Mechanisms::vb_only()), "vb");
    vanilla.makespan_ns as f64 / vb.makespan_ns.max(1) as f64
}

/// Figure 10(a): speedup of VB over vanilla for mutex / condvar / barrier
/// with 1..=32 threads on a single core.
pub fn fig10a_primitives_threads(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new([
        "threads",
        "pthread_mutex",
        "pthread_cond",
        "pthread_barrier",
    ]);
    for &n in &[1usize, 2, 4, 8, 16, 32] {
        t.row([
            n.to_string(),
            fmt_x(primitive_speedup(Primitive::Mutex, n, 1, opts)),
            fmt_x(primitive_speedup(Primitive::Cond, n, 1, opts)),
            fmt_x(primitive_speedup(Primitive::Barrier, n, 1, opts)),
        ]);
    }
    t
}

/// Figure 10(b): speedup of VB over vanilla with 32 threads on 1..=32
/// cores.
pub fn fig10b_primitives_cores(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new(["cores", "pthread_mutex", "pthread_cond", "pthread_barrier"]);
    for &c in &[1usize, 2, 4, 8, 16, 32] {
        t.row([
            c.to_string(),
            fmt_x(primitive_speedup(Primitive::Mutex, 32, c, opts)),
            fmt_x(primitive_speedup(Primitive::Cond, 32, c, opts)),
            fmt_x(primitive_speedup(Primitive::Barrier, 32, c, opts)),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 11: CPU elasticity
// ---------------------------------------------------------------------

/// Figure 11: execution time (s) of five benchmarks across core counts
/// under {#core-T vanilla, 8T vanilla, 32T vanilla, 32T pinned,
/// 32T optimized}.
pub fn fig11_elasticity(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new([
        "benchmark",
        "cores",
        "#coreT(van)",
        "8T(van)",
        "32T(van)",
        "32T(pinned)",
        "32T(opt)",
    ]);
    for name in ["ep", "facesim", "streamcluster", "ocean", "cg"] {
        for &cores in &[2usize, 4, 8, 16, 32] {
            let m = MachineSpec::PaperN(cores);
            let run = |threads: usize, mech: Mechanisms, pinned: bool| {
                let profile = BenchProfile::by_name(name).unwrap();
                let mut wl = Skeleton::scaled(profile, threads, opts.scale);
                let mut cfg = RunConfig::vanilla(cores)
                    .with_machine(m.clone())
                    .with_mech(mech)
                    .with_seed(opts.seed);
                cfg.pinned = pinned;
                run_labelled(&mut wl, &cfg, name)
            };
            let coret = run(cores, Mechanisms::vanilla(), false);
            let t8 = run(8, Mechanisms::vanilla(), false);
            let t32 = run(32, Mechanisms::vanilla(), false);
            let pinned = run(32, Mechanisms::vanilla(), true);
            let opt = run(32, Mechanisms::optimized(), false);
            t.row([
                name.to_string(),
                cores.to_string(),
                fmt_s(&coret),
                fmt_s(&t8),
                fmt_s(&t32),
                fmt_s(&pinned),
                fmt_s(&opt),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------
// Figure 12: memcached
// ---------------------------------------------------------------------

/// Figure 12: memcached throughput / mean / p95 / p99 under {4T vanilla,
/// 16T vanilla, 16T optimized} on 4, 8, and 16 server cores.
pub fn fig12_memcached(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new([
        "cores",
        "arm",
        "throughput(op/s)",
        "mean(us)",
        "p95(us)",
        "p99(us)",
    ]);
    let duration = SimTime::from_millis(((2_000.0 * opts.scale).max(300.0)) as u64);
    for &cores in &[4usize, 8, 16] {
        // Offered load tracks capacity (~80%), as a closed-loop mutilate
        // client effectively does; a fixed open-loop rate would saturate
        // the small configurations into unbounded queueing.
        let rate = (45_000.0 * cores as f64).min(420_000.0);
        for (label, workers, mech) in [
            ("4T(vanilla)", 4, Mechanisms::vanilla()),
            ("16T(vanilla)", 16, Mechanisms::vanilla()),
            ("16T(optimized)", 16, Mechanisms::optimized()),
        ] {
            let mut wl = Memcached::paper(workers, cores, rate);
            wl.clients = (rate / 70_000.0).ceil() as usize;
            let cpus = wl.total_cpus();
            let cfg = RunConfig::vanilla(cpus)
                .with_mech(mech)
                .with_seed(opts.seed)
                .with_max_time(duration);
            let r = run_labelled(&mut wl, &cfg, label);
            t.row([
                cores.to_string(),
                label.to_string(),
                format!("{:.0}", r.throughput_ops()),
                format!("{:.0}", r.latency.mean() / 1_000.0),
                format!("{}", r.latency.percentile(95.0) / 1_000),
                format!("{}", r.latency.percentile(99.0) / 1_000),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------
// Figure 13: the ten spinlocks
// ---------------------------------------------------------------------

/// Figure 13: execution time (s) of the spinlock stress benchmark for all
/// ten algorithms, in a container or a VM (the VM adds the PLE arm).
pub fn fig13_spinlocks(env: ExecEnv, opts: ExpOpts) -> TextTable {
    let header: Vec<&str> = match env {
        ExecEnv::Container => vec!["lock", "8T(vanilla)", "32T(vanilla)", "32T(optimized)"],
        ExecEnv::Vm => vec![
            "lock",
            "8T(vanilla)",
            "32T(vanilla)",
            "32T(PLE)",
            "32T(optimized)",
        ],
    };
    let mut t = TextTable::new(header);
    let iters = ((1_600.0 * opts.scale).max(96.0)) as usize;
    for policy in SpinPolicy::all() {
        let run = |threads: usize, mech: Mechanisms| {
            let mut wl = SpinlockStress::fig13(threads, policy, iters);
            let mut cfg = RunConfig::vanilla(8)
                .with_machine(MachineSpec::Paper8Cores)
                .with_mech(mech)
                .with_seed(opts.seed);
            cfg.env = env;
            run_labelled(&mut wl, &cfg, policy.name)
        };
        let base = run(8, Mechanisms::vanilla());
        let over = run(32, Mechanisms::vanilla());
        let opt = run(32, Mechanisms::bwd_only());
        let mut row = vec![policy.name.to_string(), fmt_s(&base), fmt_s(&over)];
        if env == ExecEnv::Vm {
            let ple = run(32, Mechanisms::ple_only());
            row.push(fmt_s(&ple));
        }
        row.push(fmt_s(&opt));
        t.row(row);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 14: user-customized spinning
// ---------------------------------------------------------------------

/// Figure 14: execution time (s) of `lu` and `volrend` with 8/16/32
/// threads on 8 cores, in containers and VMs, under vanilla / PLE /
/// optimized.
pub fn fig14_custom_spin(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new(["benchmark", "env", "threads", "vanilla", "PLE", "optimized"]);
    for name in ["lu", "volrend"] {
        for env in [ExecEnv::Container, ExecEnv::Vm] {
            for &threads in &[8usize, 16, 32] {
                let run = |mech: Mechanisms| {
                    let profile = BenchProfile::by_name(name).unwrap();
                    let mut wl = Skeleton::scaled(profile, threads, opts.scale);
                    let mut cfg = RunConfig::vanilla(8)
                        .with_machine(MachineSpec::Paper8Cores)
                        .with_mech(mech)
                        .with_seed(opts.seed);
                    cfg.env = env;
                    run_labelled(&mut wl, &cfg, name)
                };
                let vanilla = run(Mechanisms::vanilla());
                let ple = if env == ExecEnv::Vm {
                    fmt_s(&run(Mechanisms::ple_only()))
                } else {
                    "n/a".to_string()
                };
                let opt = run(Mechanisms::optimized());
                t.row([
                    name.to_string(),
                    format!("{env:?}"),
                    threads.to_string(),
                    fmt_s(&vanilla),
                    ple,
                    fmt_s(&opt),
                ]);
            }
        }
    }
    t
}

// ---------------------------------------------------------------------
// Figure 15: SHFLLOCK comparison
// ---------------------------------------------------------------------

/// Figure 15: normalized execution time (to the 8T pthread baseline) of
/// five benchmarks at 32T/8c with the synchronization library replaced by
/// each lock design, vs our optimized kernel.
pub fn fig15_shfllock(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new([
        "benchmark",
        "pthread",
        "mutexee",
        "mcstp",
        "shfllock",
        "optimized",
    ]);
    let spin_ns = 150_000; // spin budget of the spin-then-park designs
    for name in ["freqmine", "streamcluster", "lu_cb", "ocean", "radix"] {
        let profile = BenchProfile::by_name(name).unwrap();
        let run = |threads: usize, kind: Option<MutexKind>, mech: Mechanisms| {
            let mut wl = Skeleton::scaled(profile, threads, opts.scale);
            if let Some(k) = kind {
                wl = wl.with_barrier_mutex(k);
            }
            let cfg = RunConfig::vanilla(8)
                .with_machine(MachineSpec::Paper8Cores)
                .with_mech(mech)
                .with_seed(opts.seed);
            run_labelled(&mut wl, &cfg, name)
        };
        let base = run(8, None, Mechanisms::vanilla());
        let pthread = run(32, None, Mechanisms::vanilla());
        let mutexee = run(
            32,
            Some(MutexKind::Mutexee { spin_ns }),
            Mechanisms::vanilla(),
        );
        let mcstp = run(
            32,
            Some(MutexKind::McsTp { spin_ns }),
            Mechanisms::vanilla(),
        );
        let shfl = run(
            32,
            Some(MutexKind::Shfllock { spin_ns }),
            Mechanisms::vanilla(),
        );
        let opt = run(32, None, Mechanisms::optimized());
        t.row([
            name.to_string(),
            fmt_x(pthread.normalized_to(&base)),
            fmt_x(mutexee.normalized_to(&base)),
            fmt_x(mcstp.normalized_to(&base)),
            fmt_x(shfl.normalized_to(&base)),
            fmt_x(opt.normalized_to(&base)),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Tables 2 and 3: BWD accuracy
// ---------------------------------------------------------------------

/// Table 2: BWD's true-positive rate for the ten spinlocks (holder /
/// contender probe on one core).
pub fn table2_bwd_tp(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new(["lock", "tries", "TPs", "sensitivity(%)"]);
    let tries = ((4_000.0 * opts.scale).max(150.0)) as usize;
    for policy in SpinPolicy::all() {
        let mut wl = TpProbe::new(policy, tries);
        let cfg = RunConfig::vanilla(1)
            .with_mech(Mechanisms::bwd_only())
            .with_seed(opts.seed);
        let r = run_labelled(&mut wl, &cfg, policy.name);
        let episodes = r.bwd.spin_episodes.max(1);
        let sens = 100.0 * r.bwd.true_positives.min(episodes) as f64 / episodes as f64;
        t.row([
            policy.name.to_string(),
            episodes.to_string(),
            r.bwd.true_positives.to_string(),
            format!("{sens:.2}"),
        ]);
    }
    t
}

/// Table 3: BWD's false-positive rate on 8 blocking NPB benchmarks that
/// contain no synchronization spinning (their tight loops are the bait),
/// plus the FP-induced overhead.
pub fn table3_bwd_fp(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new(["app", "windows", "FPs", "specificity(%)", "FP-overhead(%)"]);
    for name in ["is", "ep", "cg", "mg", "ft", "sp", "bt", "ua"] {
        let without = run_skeleton(
            name,
            32,
            MachineSpec::Paper8Cores,
            Mechanisms::vb_only(),
            opts,
        );
        let with = run_skeleton(
            name,
            32,
            MachineSpec::Paper8Cores,
            Mechanisms::optimized(),
            opts,
        );
        let checks = with.bwd.checks.max(1);
        let spec = 100.0 * (1.0 - with.bwd.false_positives as f64 / checks as f64);
        let overhead =
            100.0 * (with.makespan_ns as f64 / without.makespan_ns.max(1) as f64 - 1.0).max(0.0);
        t.row([
            name.to_string(),
            checks.to_string(),
            with.bwd.false_positives.to_string(),
            format!("{spec:.2}"),
            format!("{overhead:.2}"),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Ablations (beyond the paper's tables)
// ---------------------------------------------------------------------

/// Ablation: BWD timer interval sweep on the `lu` skeleton (32T / 8c):
/// detection latency vs timer overhead.
pub fn ablation_bwd_interval(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new(["interval(us)", "makespan(s)", "detections", "checks"]);
    for &us in &[25u64, 50, 100, 200, 400, 800] {
        let profile = BenchProfile::by_name("lu").unwrap();
        let mut wl = Skeleton::scaled(profile, 32, opts.scale);
        let mut cfg = RunConfig::vanilla(8)
            .with_machine(MachineSpec::Paper8Cores)
            .with_mech(Mechanisms::optimized())
            .with_seed(opts.seed);
        cfg.bwd_params.interval_ns = us * MICROS;
        let r = run_labelled(&mut wl, &cfg, "lu");
        t.row([
            us.to_string(),
            fmt_s(&r),
            r.bwd.detections.to_string(),
            r.bwd.checks.to_string(),
        ]);
    }
    t
}

/// Ablation: LBR-only vs LBR+PMC detection heuristics — false positives on
/// a blocking NPB benchmark with tight-loop bait.
pub fn ablation_bwd_heuristics(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new(["heuristic", "FPs", "windows", "makespan(s)"]);
    for (label, use_pmc) in [("LBR+PMC", true), ("LBR-only", false)] {
        let profile = BenchProfile::by_name("cg").unwrap();
        let mut wl = Skeleton::scaled(profile, 32, opts.scale);
        let mut cfg = RunConfig::vanilla(8)
            .with_machine(MachineSpec::Paper8Cores)
            .with_mech(Mechanisms::optimized())
            .with_seed(opts.seed);
        cfg.bwd_params.use_pmc = use_pmc;
        let r = run_labelled(&mut wl, &cfg, label);
        t.row([
            label.to_string(),
            r.bwd.false_positives.to_string(),
            r.bwd.checks.to_string(),
            fmt_s(&r),
        ]);
    }
    t
}

/// Ablation: VB's auto-disable heuristic under no oversubscription
/// (8T / 8c): with the heuristic, VB defers to vanilla sleeps; without it,
/// every wait is virtual.
pub fn ablation_vb_auto_disable(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new(["arm", "makespan(s)", "virtual-waits", "sleep-waits"]);
    for (label, auto) in [("auto-disable-on", true), ("auto-disable-off", false)] {
        let profile = BenchProfile::by_name("streamcluster").unwrap();
        let mut wl = Skeleton::scaled(profile, 8, opts.scale);
        let mut cfg = RunConfig::vanilla(8)
            .with_machine(MachineSpec::Paper8Cores)
            .with_mech(Mechanisms::vb_only())
            .with_seed(opts.seed);
        cfg.mech.vb_auto_disable = auto;
        let r = run_labelled(&mut wl, &cfg, label);
        t.row([
            label.to_string(),
            fmt_s(&r),
            r.blocking.virtual_waits.to_string(),
            r.blocking.sleep_waits.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Multi-seed helpers and further extensions
// ---------------------------------------------------------------------

/// Run one skeleton arm across `seeds` seeds and summarize the makespan
/// (virtual seconds). Runs are deterministic per seed; the spread captures
/// sensitivity to workload jitter and placement.
pub fn multi_seed_makespan(
    name: &str,
    threads: usize,
    mech: Mechanisms,
    opts: ExpOpts,
    seeds: usize,
) -> Summary {
    let samples: Vec<f64> = (0..seeds.max(1))
        .map(|k| {
            let o = ExpOpts {
                seed: opts.seed + k as u64 * 7919,
                ..opts
            };
            run_skeleton(name, threads, MachineSpec::Paper8Cores, mech, o).makespan_secs()
        })
        .collect();
    Summary::of(&samples)
}

/// Seed-sensitivity table: the Figure 9 headline arms across 5 seeds,
/// reported as mean ± 95% CI — evidence the shapes are not seed artifacts.
pub fn seed_sensitivity(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new(["benchmark", "8T(van)", "32T(van)", "32T(opt)"]);
    for name in ["streamcluster", "cg", "lu"] {
        let b = multi_seed_makespan(name, 8, Mechanisms::vanilla(), opts, 5);
        let o = multi_seed_makespan(name, 32, Mechanisms::vanilla(), opts, 5);
        let x = multi_seed_makespan(name, 32, Mechanisms::optimized(), opts, 5);
        t.row([name.to_string(), b.display(3), o.display(3), x.display(3)]);
    }
    t
}

/// Ablation: migration-cost sensitivity — scale the cross-node refill
/// multiplier and watch the vanilla oversubscription penalty move while
/// the VB arm stays flat (it barely migrates).
pub fn ablation_migration_cost(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new([
        "remote-mult",
        "32T(van)",
        "32T(opt)",
        "van-migr",
        "opt-migr",
    ]);
    for &mult in &[1.0f64, 1.6, 2.5, 4.0] {
        let run = |mech: Mechanisms| {
            let profile = BenchProfile::by_name("streamcluster").unwrap();
            let mut wl = Skeleton::scaled(profile, 32, opts.scale);
            let mut cfg = RunConfig::vanilla(8)
                .with_machine(MachineSpec::Paper8Cores)
                .with_mech(mech)
                .with_seed(opts.seed);
            cfg.cache.remote_dram_mult = mult;
            run_labelled(&mut wl, &cfg, "streamcluster")
        };
        let van = run(Mechanisms::vanilla());
        let opt = run(Mechanisms::optimized());
        t.row([
            format!("{mult:.1}"),
            fmt_s(&van),
            fmt_s(&opt),
            van.tasks.migrations().to_string(),
            opt.tasks.migrations().to_string(),
        ]);
    }
    t
}

/// Ablation: wakeup-path cost sweep — scale the fixed `try_to_wake_up`
/// cost and watch vanilla blocking degrade while VB is untouched (it
/// never takes that path).
pub fn ablation_wakeup_cost(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new(["wakeup-fixed(ns)", "32T(van)", "32T(opt)"]);
    for &ns in &[350u64, 700, 1_400, 2_800] {
        let run = |mech: Mechanisms| {
            let profile = BenchProfile::by_name("cg").unwrap();
            let mut wl = Skeleton::scaled(profile, 32, opts.scale);
            let mut cfg = RunConfig::vanilla(8)
                .with_machine(MachineSpec::Paper8Cores)
                .with_mech(mech)
                .with_seed(opts.seed);
            cfg.sched.wakeup_fixed_ns = ns;
            run_labelled(&mut wl, &cfg, "cg")
        };
        t.row([
            ns.to_string(),
            fmt_s(&run(Mechanisms::vanilla())),
            fmt_s(&run(Mechanisms::optimized())),
        ]);
    }
    t
}

/// Extension: the §4.3 pipeline microbenchmark (cascading delays), flag
/// flavour, across stage counts on 8 cores.
pub fn ext_pipeline_cascade(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new(["stages", "vanilla(s)", "optimized(s)", "detections"]);
    let items = ((240.0 * opts.scale).max(30.0)) as usize;
    for &stages in &[8usize, 16, 32, 64] {
        let run = |mech: Mechanisms| {
            let mut wl = SpinPipeline::new(stages, items, WaitFlavor::Flags);
            let cfg = RunConfig::vanilla(8)
                .with_machine(MachineSpec::Paper8Cores)
                .with_mech(mech)
                .with_seed(opts.seed);
            run_labelled(&mut wl, &cfg, "pipeline")
        };
        let van = run(Mechanisms::vanilla());
        let opt = run(Mechanisms::bwd_only());
        t.row([
            stages.to_string(),
            fmt_s(&van),
            fmt_s(&opt),
            opt.bwd.detections.to_string(),
        ]);
    }
    t
}

/// Ablation: huge pages — with 2 MiB pages the whole Figure 4 TLB story
/// evaporates (64 L1-TLB entries then reach 128 MiB), so random-access
/// oversubscription loses its TLB benefit. An extension of §2.3's
/// analysis the paper alludes to via its 4 KiB-page arithmetic.
pub fn ablation_hugepages(opts: ExpOpts) -> TextTable {
    use oversub_workloads::micro::ArrayWalk;
    let mut t = TextTable::new(["array", "rnd-r 4K pages(us/CS)", "rnd-r 2M pages(us/CS)"]);
    let passes = ((24.0 * opts.scale).max(4.0)) as u64;
    for &ws in &[512u64 << 10, 8 << 20, 64 << 20] {
        let mut row = vec![if ws >= (1 << 20) {
            format!("{}MB", ws >> 20)
        } else {
            format!("{}KB", ws >> 10)
        }];
        for page in [4096u64, 2 << 20] {
            let run = |threads: usize| {
                let mut wl = ArrayWalk {
                    threads,
                    total_ws: ws,
                    pattern: AccessPattern::RndRead,
                    passes,
                };
                let mut cfg = RunConfig::vanilla(1).with_seed(opts.seed);
                cfg.cache.page_bytes = page;
                run_labelled(&mut wl, &cfg, "hugepages")
            };
            let serial = run(1);
            let over = run(2);
            let ncs = over.cpus.context_switches.max(1);
            let cost_us =
                (over.makespan_ns as f64 - serial.makespan_ns as f64) / ncs as f64 / 1_000.0;
            row.push(format!("{cost_us:.2}"));
        }
        t.row(row);
    }
    t
}

/// Extension: dynamic threading (OpenMP-style per-region activation) vs
/// oversubscription, the alternative the paper's related-work section
/// argues against. A 32-thread pool runs region-heavy fork-join work on a
/// varying number of cores: the "dynamic" arm activates exactly
/// `cores` threads per region, the oversubscribed arms activate all 32.
pub fn ext_forkjoin_dynamic_threading(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new([
        "cores",
        "dynamic(active=cores)",
        "32-active(vanilla)",
        "32-active(optimized)",
    ]);
    let regions = ((400.0 * opts.scale).max(60.0)) as usize;
    for &cores in &[4usize, 8, 16] {
        let run = |active: usize, mech: Mechanisms| {
            // Region-heavy: little work per region, so the fork/join
            // wake-ups dominate and the mechanisms matter.
            let mut wl = ForkJoin {
                pool: 32,
                active,
                regions,
                chunks: 64,
                chunk_ns: 8_000,
            };
            let cfg = RunConfig::vanilla(cores)
                .with_machine(MachineSpec::PaperN(cores))
                .with_mech(mech)
                .with_seed(opts.seed);
            run_labelled(&mut wl, &cfg, "fork-join")
        };
        let dynamic = run(cores, Mechanisms::vanilla());
        let naive = run(32, Mechanisms::vanilla());
        let opt = run(32, Mechanisms::optimized());
        t.row([
            cores.to_string(),
            fmt_s(&dynamic),
            fmt_s(&naive),
            fmt_s(&opt),
        ]);
    }
    t
}

/// Extension: the CloudSuite-style web-serving workload (the paper cites
/// its results as confirming the memcached findings).
pub fn ext_web_serving(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new(["cores", "arm", "tput(op/s)", "p95(us)", "p99(us)"]);
    let duration = SimTime::from_millis(((1_200.0 * opts.scale).max(250.0)) as u64);
    for &cores in &[4usize, 8] {
        let rate = 15_000.0 * cores as f64;
        for (label, workers, mech) in [
            ("4T(vanilla)", 4, Mechanisms::vanilla()),
            ("16T(vanilla)", 16, Mechanisms::vanilla()),
            ("16T(optimized)", 16, Mechanisms::optimized()),
        ] {
            let mut wl = WebServing::new(workers, cores, rate);
            let cpus = wl.total_cpus();
            let cfg = RunConfig::vanilla(cpus)
                .with_mech(mech)
                .with_seed(opts.seed)
                .with_max_time(duration);
            let r = run_labelled(&mut wl, &cfg, label);
            t.row([
                cores.to_string(),
                label.to_string(),
                format!("{:.0}", r.throughput_ops()),
                format!("{}", r.latency.percentile(95.0) / 1_000),
                format!("{}", r.latency.percentile(99.0) / 1_000),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOpts {
        ExpOpts {
            scale: 0.02,
            seed: 7,
        }
    }

    #[test]
    fn fig03_counts_all_benchmarks() {
        let t = fig03_sync_intervals();
        assert_eq!(t.len(), 11);
        let total: usize = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse::<usize>().unwrap())
            .sum();
        assert_eq!(total, 32);
    }

    #[test]
    fn fig02_is_flat() {
        let t = fig02_direct_cost(tiny());
        assert_eq!(t.len(), 8);
        // Direct CS cost must stay within a few percent at any thread
        // count (the paper's 0.2% claim; we allow slack on tiny runs).
        for line in t.to_csv().lines().skip(1) {
            let v: f64 = line.split(',').nth(1).unwrap().parse().unwrap();
            assert!((0.9..=1.1).contains(&v), "fig2 not flat: {line}");
        }
    }

    #[test]
    fn table2_sensitivity_is_high() {
        let t = table2_bwd_tp(tiny());
        assert_eq!(t.len(), 10);
        for line in t.to_csv().lines().skip(1) {
            let sens: f64 = line.split(',').nth(3).unwrap().parse().unwrap();
            assert!(sens > 80.0, "sensitivity too low: {line}");
        }
    }
}
