//! Efficient thread oversubscription via virtual blocking and busy-waiting
//! detection — a full reproduction of the HPDC '21 system as a
//! deterministic simulation library.
//!
//! # Quick start
//!
//! ```
//! use oversub::{run, RunConfig, MachineSpec, Mechanisms};
//! use oversub::workload::{Workload, WorldBuilder, ThreadSpec};
//! use oversub_task::{Action, ScriptProgram};
//!
//! struct TinyBatch;
//! impl Workload for TinyBatch {
//!     fn name(&self) -> &str { "tiny" }
//!     fn build(&mut self, w: &mut WorldBuilder) {
//!         for _ in 0..4 {
//!             w.spawn(ThreadSpec::new(Box::new(ScriptProgram::once(vec![
//!                 Action::Compute { ns: 1_000_000 },
//!                 Action::Exit,
//!             ]))));
//!         }
//!     }
//! }
//!
//! let report = run(&mut TinyBatch, &RunConfig::vanilla(2));
//! assert!(report.makespan_ns >= 2_000_000); // 4 ms of work on 2 cores
//! ```
//!
//! The crate exposes:
//! - [`RunConfig`] / [`Mechanisms`] / [`MachineSpec`]: what to simulate.
//! - [`workload::Workload`]: how benchmarks plug in.
//! - [`run`] / [`run_labelled`]: execute and obtain a
//!   [`oversub_metrics::RunReport`].

pub mod certify;
pub mod config;
mod engine;
mod exec;
pub mod experiments;
pub mod faults;
pub mod mechanism;
pub mod race;
pub mod sweep;
pub mod trace;

/// The workload interface (re-exported from `oversub-workloads`).
pub use oversub_workloads::workload;

pub use certify::{certify_schedules, schedule_salt, ScheduleCertification};
pub use config::{ElasticEvent, MachineSpec, Mechanisms, RunConfig};
pub use engine::{
    run, run_counted, run_labelled, run_phase_profiled, run_traced, try_run, try_run_labelled,
    PhaseProfile,
};
pub use faults::{
    EngineError, FaultCounters, FaultInjector, FaultPlan, RevocationStorm, WatchdogParams,
};
pub use mechanism::{
    BwdMechanism, Mechanism, MechanismFactory, MechanismSet, PleMechanism, SpinExitVerdict,
    SubstrateConfig, TimerCtx, TimerVerdict, VbMechanism,
};
pub use oversub_bwd::ExecEnv;
pub use oversub_metrics::{Diagnostic, MechCounters, RunReport};
pub use sweep::Sweep;

// Re-export the layers a downstream user composes with.
pub use oversub_hw as hw;
pub use oversub_ksync as ksync;
pub use oversub_locks as locks;
pub use oversub_metrics as metrics;
pub use oversub_sched as sched;
pub use oversub_simcore as simcore;
pub use oversub_task as task;
pub use oversub_workloads as workloads;
