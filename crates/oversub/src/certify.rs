//! Schedule-robustness certification (DPOR-lite).
//!
//! A deterministic simulator pins one total order on equal-time events:
//! ties break by insertion sequence. That pin is load-bearing only if
//! nothing *depends* on it — if a report ever hinges on the order two
//! same-instant events happened to be inserted, the simulation is
//! overfitting to an implementation coincidence rather than modeling a
//! scheduling outcome.
//!
//! The certifier runs one configuration under several *schedules*: the
//! pinned tie order (salt `0`) plus seeded tie-break permutations
//! ([`RunConfig::with_schedule_salt`]). Each salt permutes equal-time
//! events scheduled by a single handler execution (one event-queue pop) —
//! a wake batch fanning out over its woken list, a CPU scan, a spinner
//! release loop — while equal-time events from *different* handler
//! executions keep their causal order. This is a DPOR-lite move: instead
//! of exploring all interleavings, it perturbs exactly the tie groups
//! whose order a handler's iteration happened to fix, and asserts the
//! final [`RunReport`](oversub_metrics::RunReport) is byte-identical
//! through the canonical JSON.
//!
//! When a schedule diverges, that is a *finding*, not a failure of the
//! harness: the configuration's outcome genuinely depends on same-instant
//! fan-out order (equal-time cross-CPU wakeups contending in idle-pull,
//! lock heirs designated inside a permuted burst). The certification
//! carries one [`Diagnostic`] per diverging schedule naming the salt, the
//! first diverging report field, and both values — every report is either
//! certified byte-identical or explained.

use crate::workload::Workload;
use crate::{run, RunConfig};
use oversub_metrics::Diagnostic;

/// Outcome of certifying one configuration across tie-break schedules.
#[derive(Clone, Debug)]
pub struct ScheduleCertification {
    /// Workload name of the certified configuration.
    pub workload: String,
    /// Number of schedules run (the pinned order plus `schedules - 1`
    /// salted permutations).
    pub schedules: usize,
    /// Canonical JSON of the pinned (salt `0`) report — the baseline
    /// every salted schedule is compared against.
    pub baseline_json: String,
    /// One `schedule-divergence` diagnostic per schedule whose report
    /// differed from the baseline. Empty iff [`certified`](Self::certified).
    pub divergences: Vec<Diagnostic>,
}

impl ScheduleCertification {
    /// True iff every schedule reproduced the pinned report byte for byte.
    pub fn certified(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// The tie-break salt for schedule index `k`: `0` is the pinned order,
/// `k > 0` feeds `k` through the SplitMix64 finalizer so each schedule
/// gets a well-mixed, reproducible permutation seed.
pub fn schedule_salt(k: usize) -> u64 {
    if k == 0 {
        return 0;
    }
    let mut z = (k as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Run `cfg` under `schedules` tie-break schedules and certify that the
/// report does not depend on equal-time insertion-order coincidences.
///
/// `mk` must build a fresh workload instance per call (workloads carry
/// per-run state). The returned certification holds the baseline JSON and
/// a diagnostic for every diverging schedule; it never panics on
/// divergence — deciding whether divergence is acceptable is the
/// caller's policy.
pub fn certify_schedules(
    mk: &mut dyn FnMut() -> Box<dyn Workload>,
    cfg: &RunConfig,
    schedules: usize,
) -> ScheduleCertification {
    assert!(schedules >= 1, "need at least the pinned schedule");
    let mut baseline_wl = mk();
    let baseline = run(&mut *baseline_wl, cfg);
    let workload = baseline_wl.name().to_string();
    let baseline_json = baseline.to_json();
    let mut divergences = Vec::new();
    for k in 1..schedules {
        let salt = schedule_salt(k);
        let salted = run(&mut *mk(), &cfg.clone().with_schedule_salt(salt)).to_json();
        if salted != baseline_json {
            divergences.push(Diagnostic {
                kind: "schedule-divergence".to_string(),
                at_ns: 0,
                task: None,
                cpu: None,
                detail: divergence_detail(k, salt, &baseline_json, &salted),
            });
        }
    }
    ScheduleCertification {
        workload,
        schedules,
        baseline_json,
        divergences,
    }
}

/// Explain one diverging schedule: which salt, which report field first
/// differed, and both renderings of the surrounding bytes.
fn divergence_detail(k: usize, salt: u64, base: &str, salted: &str) -> String {
    let ab = base.as_bytes();
    let bb = salted.as_bytes();
    let i = ab
        .iter()
        .zip(bb)
        .position(|(x, y)| x != y)
        .unwrap_or(ab.len().min(bb.len()));
    let field = nearest_key(base, i).unwrap_or("<root>");
    let excerpt = |s: &str| {
        let from = i.saturating_sub(24);
        let to = (i + 24).min(s.len());
        // Clamp to char boundaries (the JSON is ASCII in practice, but
        // labels are arbitrary strings).
        let from = (0..=from)
            .rev()
            .find(|&j| s.is_char_boundary(j))
            .unwrap_or(0);
        let to = (to..=s.len())
            .find(|&j| s.is_char_boundary(j))
            .unwrap_or(s.len());
        s[from..to].to_string()
    };
    format!(
        "schedule {k} (tie-break salt {salt:#018x}) diverged from the pinned \
         tie order at report byte {i}, near field \"{field}\": \
         pinned …{}… vs permuted …{}… — the outcome depends on the order of \
         equal-time events scheduled by a single handler (wake fan-out, \
         CPU scan, or release loop), i.e. on an insertion-order coincidence \
         the pinned schedule happens to fix",
        excerpt(base),
        excerpt(salted),
    )
}

/// The last JSON object key opened at or before byte `i` — a cheap,
/// exact-enough locator for canonical single-line report JSON.
fn nearest_key(json: &str, i: usize) -> Option<&str> {
    let head = &json[..i.min(json.len())];
    let colon = head.rfind("\":")?;
    let open = head[..colon].rfind('"')?;
    Some(&head[open + 1..colon])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::pipeline::{SpinPipeline, WaitFlavor};
    use crate::{MachineSpec, Mechanisms};
    use oversub_simcore::SimTime;

    fn cfg() -> RunConfig {
        RunConfig::vanilla(4)
            .with_machine(MachineSpec::PaperN(4))
            .with_mech(Mechanisms::optimized())
            .with_seed(7)
            .with_max_time(SimTime::from_millis(40))
    }

    #[test]
    fn salts_are_distinct_and_pinned_at_zero() {
        assert_eq!(schedule_salt(0), 0);
        let salts: Vec<u64> = (1..16).map(schedule_salt).collect();
        let mut dedup = salts.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), salts.len(), "schedule salts must be distinct");
        assert!(salts.iter().all(|&s| s != 0));
    }

    #[test]
    fn flag_pipeline_certifies_clean() {
        let cert = certify_schedules(
            &mut || Box::new(SpinPipeline::new(6, 20, WaitFlavor::Flags)),
            &cfg(),
            4,
        );
        assert!(
            cert.certified(),
            "flag pipeline must be schedule-robust: {:?}",
            cert.divergences
        );
        assert_eq!(cert.schedules, 4);
        assert_eq!(cert.workload, "spin-pipeline");
    }

    #[test]
    fn divergence_detail_names_field_and_salt() {
        let base = r#"{"label":"x","makespan_ns":100,"tasks":{"exec_ns":5}}"#;
        let salted = r#"{"label":"x","makespan_ns":100,"tasks":{"exec_ns":7}}"#;
        let d = divergence_detail(3, schedule_salt(3), base, salted);
        assert!(d.contains("schedule 3"), "{d}");
        assert!(d.contains("exec_ns"), "{d}");
        assert!(d.contains("tie-break salt"), "{d}");
    }
}
