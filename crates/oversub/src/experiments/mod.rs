//! Experiment drivers: one function per figure and table of the paper.
//!
//! Each driver runs the required simulation arms and renders the same rows
//! or series the paper reports as a [`oversub_metrics::TextTable`] (also
//! exportable as CSV). Bench binaries in `crates/bench` are thin wrappers
//! around these.
//!
//! All drivers accept an [`ExpOpts`] whose `scale` shrinks per-run phase
//! counts proportionally in every arm — relative results are preserved
//! while quick runs finish in seconds.
//!
//! Layout: `figures` holds the per-figure drivers, `tables` the paper's
//! tables, and `ablations` the sweeps and extensions beyond the paper.
//! Everything is re-exported here, so callers keep using
//! `experiments::fig09_vb_blocking` etc.

mod ablations;
mod figures;
mod tables;

pub use ablations::{
    ablation_bwd_heuristics, ablation_bwd_interval, ablation_hugepages, ablation_migration_cost,
    ablation_vb_auto_disable, ablation_wakeup_cost, ext_forkjoin_dynamic_threading,
    ext_neighbour_tails, ext_overload_frontier, ext_pipeline_cascade, ext_web_serving,
    multi_seed_makespan, seed_sensitivity,
};
pub use figures::{
    fig01_survey, fig02_direct_cost, fig03_sync_intervals, fig04_indirect_cost, fig09_vb_blocking,
    fig10a_primitives_threads, fig10b_primitives_cores, fig11_elasticity, fig12_memcached,
    fig13_spinlocks, fig14_custom_spin, fig15_shfllock,
};
pub use tables::{table1_runtime_stats, table2_bwd_tp, table3_bwd_fp};

use crate::config::{MachineSpec, Mechanisms, RunConfig};
use crate::sweep::Sweep;
use oversub_metrics::RunReport;
use oversub_workloads::skeletons::{BenchProfile, Skeleton};

/// Options shared by all experiment drivers.
#[derive(Clone, Copy, Debug)]
pub struct ExpOpts {
    /// Phase-count scale (1.0 = paper-sized runs).
    pub scale: f64,
    /// Base RNG seed.
    pub seed: u64,
}

impl ExpOpts {
    /// Fast runs for CI / smoke testing.
    pub fn quick() -> Self {
        ExpOpts {
            scale: 0.08,
            seed: 42,
        }
    }

    /// Full-sized runs for the bench harness.
    pub fn full() -> Self {
        ExpOpts {
            scale: 0.5,
            seed: 42,
        }
    }
}

/// Submit one benchmark-skeleton arm (the paper's 8-core container shape)
/// to a [`Sweep`] batch; returns the arm's result index.
pub fn submit_skeleton(
    sweep: &mut Sweep,
    name: &str,
    threads: usize,
    machine: MachineSpec,
    mech: Mechanisms,
    opts: ExpOpts,
) -> usize {
    let profile = BenchProfile::by_name(name).expect("known benchmark");
    let cfg = RunConfig::vanilla(8)
        .with_machine(machine)
        .with_mech(mech)
        .with_seed(opts.seed);
    let scale = opts.scale;
    let salt = opts.seed;
    sweep.add(format!("{name}/{threads}T"), cfg, move || {
        Box::new(Skeleton::scaled(profile, threads, scale).with_salt(salt))
    })
}

/// Run a benchmark skeleton on the paper's 8-core container (4+4 across
/// two sockets) with the given thread count and mechanisms.
pub fn run_skeleton(
    name: &str,
    threads: usize,
    machine: MachineSpec,
    mech: Mechanisms,
    opts: ExpOpts,
) -> RunReport {
    let mut sweep = Sweep::new();
    submit_skeleton(&mut sweep, name, threads, machine, mech, opts);
    sweep
        .run()
        .pop()
        .expect("single-arm sweep yields one report")
}

/// Submit the arms shared by Figure 9 and Table 1 on one machine shape;
/// returns the (8T vanilla, 32T vanilla, 32T optimized) result indices.
pub(super) fn fig09_submit(
    sweep: &mut Sweep,
    name: &str,
    machine: MachineSpec,
    opts: ExpOpts,
) -> (usize, usize, usize) {
    let base = submit_skeleton(sweep, name, 8, machine.clone(), Mechanisms::vanilla(), opts);
    let over = submit_skeleton(
        sweep,
        name,
        32,
        machine.clone(),
        Mechanisms::vanilla(),
        opts,
    );
    let opt = submit_skeleton(sweep, name, 32, machine, Mechanisms::optimized(), opts);
    (base, over, opt)
}

pub(super) fn fmt_x(v: f64) -> String {
    format!("{v:.2}")
}

pub(super) fn fmt_s(r: &RunReport) -> String {
    format!("{:.3}", r.makespan_secs())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ExpOpts {
        ExpOpts {
            scale: 0.02,
            seed: 7,
        }
    }

    #[test]
    fn fig03_counts_all_benchmarks() {
        let t = fig03_sync_intervals();
        assert_eq!(t.len(), 11);
        let total: usize = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse::<usize>().unwrap())
            .sum();
        assert_eq!(total, 32);
    }

    #[test]
    fn fig02_is_flat() {
        let t = fig02_direct_cost(tiny());
        assert_eq!(t.len(), 8);
        // Direct CS cost must stay within a few percent at any thread
        // count (the paper's 0.2% claim; we allow slack on tiny runs).
        for line in t.to_csv().lines().skip(1) {
            let v: f64 = line.split(',').nth(1).unwrap().parse().unwrap();
            assert!((0.9..=1.1).contains(&v), "fig2 not flat: {line}");
        }
    }

    #[test]
    fn table2_sensitivity_is_high() {
        let t = table2_bwd_tp(tiny());
        assert_eq!(t.len(), 10);
        for line in t.to_csv().lines().skip(1) {
            let sens: f64 = line.split(',').nth(3).unwrap().parse().unwrap();
            assert!(sens > 80.0, "sensitivity too low: {line}");
        }
    }
}
