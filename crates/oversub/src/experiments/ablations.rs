//! Ablations, seed-sensitivity sweeps, and extensions beyond the paper.
//!
//! All drivers batch their arms through [`Sweep`] (submission-order
//! results, worker-pool execution, memoized repeats); each arm owns its
//! config and workload inputs, so execution order cannot leak between
//! arms.

use super::{fmt_s, submit_skeleton, ExpOpts};
use crate::config::{MachineSpec, Mechanisms, RunConfig};
use crate::sweep::Sweep;
use oversub_hw::AccessPattern;
use oversub_metrics::{Summary, TextTable};
use oversub_simcore::{SimTime, MICROS, MILLIS};
use oversub_workloads::forkjoin::ForkJoin;
use oversub_workloads::pipeline::{SpinPipeline, WaitFlavor};
use oversub_workloads::skeletons::{BenchProfile, Skeleton};
use oversub_workloads::webserving::WebServing;

/// Ablation: BWD timer interval sweep on the `lu` skeleton (32T / 8c):
/// detection latency vs timer overhead.
pub fn ablation_bwd_interval(opts: ExpOpts) -> TextTable {
    let intervals = [25u64, 50, 100, 200, 400, 800];
    let mut sweep = Sweep::new();
    let arms: Vec<_> = intervals
        .into_iter()
        .map(|us| {
            let profile = BenchProfile::by_name("lu").unwrap();
            let scale = opts.scale;
            let mut cfg = RunConfig::vanilla(8)
                .with_machine(MachineSpec::Paper8Cores)
                .with_mech(Mechanisms::optimized())
                .with_seed(opts.seed);
            cfg.bwd_params.interval_ns = us * MICROS;
            let idx = sweep.add("lu", cfg, move || {
                Box::new(Skeleton::scaled(profile, 32, scale))
            });
            (us, idx)
        })
        .collect();
    let r = sweep.run();

    let mut t = TextTable::new(["interval(us)", "makespan(s)", "detections", "checks"]);
    for (us, idx) in arms {
        t.row([
            us.to_string(),
            fmt_s(&r[idx]),
            r[idx].bwd.detections.to_string(),
            r[idx].bwd.checks.to_string(),
        ]);
    }
    t
}

/// Ablation: LBR-only vs LBR+PMC detection heuristics — false positives on
/// a blocking NPB benchmark with tight-loop bait.
pub fn ablation_bwd_heuristics(opts: ExpOpts) -> TextTable {
    let mut sweep = Sweep::new();
    let arms: Vec<_> = [("LBR+PMC", true), ("LBR-only", false)]
        .into_iter()
        .map(|(label, use_pmc)| {
            let profile = BenchProfile::by_name("cg").unwrap();
            let scale = opts.scale;
            let mut cfg = RunConfig::vanilla(8)
                .with_machine(MachineSpec::Paper8Cores)
                .with_mech(Mechanisms::optimized())
                .with_seed(opts.seed);
            cfg.bwd_params.use_pmc = use_pmc;
            let idx = sweep.add(label, cfg, move || {
                Box::new(Skeleton::scaled(profile, 32, scale))
            });
            (label, idx)
        })
        .collect();
    let r = sweep.run();

    let mut t = TextTable::new(["heuristic", "FPs", "windows", "makespan(s)"]);
    for (label, idx) in arms {
        t.row([
            label.to_string(),
            r[idx].bwd.false_positives.to_string(),
            r[idx].bwd.checks.to_string(),
            fmt_s(&r[idx]),
        ]);
    }
    t
}

/// Ablation: VB's auto-disable heuristic under no oversubscription
/// (8T / 8c): with the heuristic, VB defers to vanilla sleeps; without it,
/// every wait is virtual.
pub fn ablation_vb_auto_disable(opts: ExpOpts) -> TextTable {
    let mut sweep = Sweep::new();
    let arms: Vec<_> = [("auto-disable-on", true), ("auto-disable-off", false)]
        .into_iter()
        .map(|(label, auto)| {
            let profile = BenchProfile::by_name("streamcluster").unwrap();
            let scale = opts.scale;
            let mut cfg = RunConfig::vanilla(8)
                .with_machine(MachineSpec::Paper8Cores)
                .with_mech(Mechanisms::vb_only())
                .with_seed(opts.seed);
            cfg.mech.vb_auto_disable = auto;
            let idx = sweep.add(label, cfg, move || {
                Box::new(Skeleton::scaled(profile, 8, scale))
            });
            (label, idx)
        })
        .collect();
    let r = sweep.run();

    let mut t = TextTable::new(["arm", "makespan(s)", "virtual-waits", "sleep-waits"]);
    for (label, idx) in arms {
        t.row([
            label.to_string(),
            fmt_s(&r[idx]),
            r[idx].blocking.virtual_waits.to_string(),
            r[idx].blocking.sleep_waits.to_string(),
        ]);
    }
    t
}

/// Run one skeleton arm across `seeds` seeds and summarize the makespan
/// (virtual seconds). Runs are deterministic per seed; the spread captures
/// sensitivity to workload jitter and placement.
pub fn multi_seed_makespan(
    name: &str,
    threads: usize,
    mech: Mechanisms,
    opts: ExpOpts,
    seeds: usize,
) -> Summary {
    let mut sweep = Sweep::new();
    for k in 0..seeds.max(1) {
        let o = ExpOpts {
            seed: opts.seed + k as u64 * 7919,
            ..opts
        };
        submit_skeleton(&mut sweep, name, threads, MachineSpec::Paper8Cores, mech, o);
    }
    let samples: Vec<f64> = sweep.run().iter().map(|r| r.makespan_secs()).collect();
    Summary::of(&samples)
}

/// Seed-sensitivity table: the Figure 9 headline arms across 5 seeds,
/// reported as mean ± 95% CI — evidence the shapes are not seed artifacts.
pub fn seed_sensitivity(opts: ExpOpts) -> TextTable {
    const SEEDS: usize = 5;
    let mut sweep = Sweep::new();
    let mut submit_group = |name: &str, threads: usize, mech: Mechanisms| -> Vec<usize> {
        (0..SEEDS)
            .map(|k| {
                let o = ExpOpts {
                    seed: opts.seed + k as u64 * 7919,
                    ..opts
                };
                submit_skeleton(&mut sweep, name, threads, MachineSpec::Paper8Cores, mech, o)
            })
            .collect()
    };
    let arms: Vec<_> = ["streamcluster", "cg", "lu"]
        .into_iter()
        .map(|name| {
            (
                name,
                submit_group(name, 8, Mechanisms::vanilla()),
                submit_group(name, 32, Mechanisms::vanilla()),
                submit_group(name, 32, Mechanisms::optimized()),
            )
        })
        .collect();
    let r = sweep.run();
    let summarize = |idxs: &[usize]| {
        let samples: Vec<f64> = idxs.iter().map(|&i| r[i].makespan_secs()).collect();
        Summary::of(&samples)
    };

    let mut t = TextTable::new(["benchmark", "8T(van)", "32T(van)", "32T(opt)"]);
    for (name, b, o, x) in arms {
        t.row([
            name.to_string(),
            summarize(&b).display(3),
            summarize(&o).display(3),
            summarize(&x).display(3),
        ]);
    }
    t
}

/// Ablation: migration-cost sensitivity — scale the cross-node refill
/// multiplier and watch the vanilla oversubscription penalty move while
/// the VB arm stays flat (it barely migrates).
pub fn ablation_migration_cost(opts: ExpOpts) -> TextTable {
    let mut sweep = Sweep::new();
    let mut arms = Vec::new();
    for &mult in &[1.0f64, 1.6, 2.5, 4.0] {
        let mut submit = |mech: Mechanisms| {
            let profile = BenchProfile::by_name("streamcluster").unwrap();
            let scale = opts.scale;
            let mut cfg = RunConfig::vanilla(8)
                .with_machine(MachineSpec::Paper8Cores)
                .with_mech(mech)
                .with_seed(opts.seed);
            cfg.cache.remote_dram_mult = mult;
            sweep.add("streamcluster", cfg, move || {
                Box::new(Skeleton::scaled(profile, 32, scale))
            })
        };
        let van = submit(Mechanisms::vanilla());
        let opt = submit(Mechanisms::optimized());
        arms.push((mult, van, opt));
    }
    let r = sweep.run();

    let mut t = TextTable::new([
        "remote-mult",
        "32T(van)",
        "32T(opt)",
        "van-migr",
        "opt-migr",
    ]);
    for (mult, van, opt) in arms {
        t.row([
            format!("{mult:.1}"),
            fmt_s(&r[van]),
            fmt_s(&r[opt]),
            r[van].tasks.migrations().to_string(),
            r[opt].tasks.migrations().to_string(),
        ]);
    }
    t
}

/// Ablation: wakeup-path cost sweep — scale the fixed `try_to_wake_up`
/// cost and watch vanilla blocking degrade while VB is untouched (it
/// never takes that path).
pub fn ablation_wakeup_cost(opts: ExpOpts) -> TextTable {
    let mut sweep = Sweep::new();
    let mut arms = Vec::new();
    for &ns in &[350u64, 700, 1_400, 2_800] {
        let mut submit = |mech: Mechanisms| {
            let profile = BenchProfile::by_name("cg").unwrap();
            let scale = opts.scale;
            let mut cfg = RunConfig::vanilla(8)
                .with_machine(MachineSpec::Paper8Cores)
                .with_mech(mech)
                .with_seed(opts.seed);
            cfg.sched.wakeup_fixed_ns = ns;
            sweep.add("cg", cfg, move || {
                Box::new(Skeleton::scaled(profile, 32, scale))
            })
        };
        let van = submit(Mechanisms::vanilla());
        let opt = submit(Mechanisms::optimized());
        arms.push((ns, van, opt));
    }
    let r = sweep.run();

    let mut t = TextTable::new(["wakeup-fixed(ns)", "32T(van)", "32T(opt)"]);
    for (ns, van, opt) in arms {
        t.row([ns.to_string(), fmt_s(&r[van]), fmt_s(&r[opt])]);
    }
    t
}

/// Extension: the §4.3 pipeline microbenchmark (cascading delays), flag
/// flavour, across stage counts on 8 cores.
pub fn ext_pipeline_cascade(opts: ExpOpts) -> TextTable {
    let items = ((240.0 * opts.scale).max(30.0)) as usize;
    let mut sweep = Sweep::new();
    let mut arms = Vec::new();
    for &stages in &[8usize, 16, 32, 64] {
        let mut submit = |mech: Mechanisms| {
            let cfg = RunConfig::vanilla(8)
                .with_machine(MachineSpec::Paper8Cores)
                .with_mech(mech)
                .with_seed(opts.seed);
            sweep.add("pipeline", cfg, move || {
                Box::new(SpinPipeline::new(stages, items, WaitFlavor::Flags))
            })
        };
        let van = submit(Mechanisms::vanilla());
        let opt = submit(Mechanisms::bwd_only());
        arms.push((stages, van, opt));
    }
    let r = sweep.run();

    let mut t = TextTable::new([
        "stages",
        "vanilla(s)",
        "optimized(s)",
        "detections",
        "van p99(us)",
        "opt p99(us)",
    ]);
    for (stages, van, opt) in arms {
        t.row([
            stages.to_string(),
            fmt_s(&r[van]),
            fmt_s(&r[opt]),
            r[opt].bwd.detections.to_string(),
            format!("{}", r[van].latency_exact.p99() / 1_000),
            format!("{}", r[opt].latency_exact.p99() / 1_000),
        ]);
    }
    t
}

/// Ablation: huge pages — with 2 MiB pages the whole Figure 4 TLB story
/// evaporates (64 L1-TLB entries then reach 128 MiB), so random-access
/// oversubscription loses its TLB benefit. An extension of §2.3's
/// analysis the paper alludes to via its 4 KiB-page arithmetic.
pub fn ablation_hugepages(opts: ExpOpts) -> TextTable {
    use oversub_workloads::micro::ArrayWalk;
    let passes = ((24.0 * opts.scale).max(4.0)) as u64;
    let mut sweep = Sweep::new();
    let mut arms = Vec::new(); // (ws, [(serial, over); 2])
    for &ws in &[512u64 << 10, 8 << 20, 64 << 20] {
        let cells: Vec<(usize, usize)> = [4096u64, 2 << 20]
            .into_iter()
            .map(|page| {
                let mut submit = |threads: usize| {
                    let mut cfg = RunConfig::vanilla(1).with_seed(opts.seed);
                    cfg.cache.page_bytes = page;
                    sweep.add("hugepages", cfg, move || {
                        Box::new(ArrayWalk {
                            threads,
                            total_ws: ws,
                            pattern: AccessPattern::RndRead,
                            passes,
                        })
                    })
                };
                (submit(1), submit(2))
            })
            .collect();
        arms.push((ws, cells));
    }
    let r = sweep.run();

    let mut t = TextTable::new(["array", "rnd-r 4K pages(us/CS)", "rnd-r 2M pages(us/CS)"]);
    for (ws, cells) in arms {
        let mut row = vec![if ws >= (1 << 20) {
            format!("{}MB", ws >> 20)
        } else {
            format!("{}KB", ws >> 10)
        }];
        for (serial, over) in cells {
            let ncs = r[over].cpus.context_switches.max(1);
            let cost_us =
                (r[over].makespan_ns as f64 - r[serial].makespan_ns as f64) / ncs as f64 / 1_000.0;
            row.push(format!("{cost_us:.2}"));
        }
        t.row(row);
    }
    t
}

/// Extension: dynamic threading (OpenMP-style per-region activation) vs
/// oversubscription, the alternative the paper's related-work section
/// argues against. A 32-thread pool runs region-heavy fork-join work on a
/// varying number of cores: the "dynamic" arm activates exactly
/// `cores` threads per region, the oversubscribed arms activate all 32.
pub fn ext_forkjoin_dynamic_threading(opts: ExpOpts) -> TextTable {
    let regions = ((400.0 * opts.scale).max(60.0)) as usize;
    let mut sweep = Sweep::new();
    let mut arms = Vec::new();
    for &cores in &[4usize, 8, 16] {
        let mut submit = |active: usize, mech: Mechanisms| {
            let cfg = RunConfig::vanilla(cores)
                .with_machine(MachineSpec::PaperN(cores))
                .with_mech(mech)
                .with_seed(opts.seed);
            // Region-heavy: little work per region, so the fork/join
            // wake-ups dominate and the mechanisms matter.
            sweep.add("fork-join", cfg, move || {
                Box::new(ForkJoin::new(32, active, regions, 64, 8_000))
            })
        };
        let dynamic = submit(cores, Mechanisms::vanilla());
        let naive = submit(32, Mechanisms::vanilla());
        let opt = submit(32, Mechanisms::optimized());
        arms.push((cores, dynamic, naive, opt));
    }
    let r = sweep.run();

    let mut t = TextTable::new([
        "cores",
        "dynamic(active=cores)",
        "32-active(vanilla)",
        "32-active(optimized)",
        "region p99(us, opt)",
    ]);
    for (cores, dynamic, naive, opt) in arms {
        t.row([
            cores.to_string(),
            fmt_s(&r[dynamic]),
            fmt_s(&r[naive]),
            fmt_s(&r[opt]),
            format!("{}", r[opt].latency_exact.p99() / 1_000),
        ]);
    }
    t
}

/// Extension: the CloudSuite-style web-serving workload (the paper cites
/// its results as confirming the memcached findings).
pub fn ext_web_serving(opts: ExpOpts) -> TextTable {
    let duration = SimTime::from_millis(((1_200.0 * opts.scale).max(250.0)) as u64);
    let mut sweep = Sweep::new();
    let mut arms = Vec::new();
    for &cores in &[4usize, 8] {
        let rate = 15_000.0 * cores as f64;
        for (label, workers, mech) in [
            ("4T(vanilla)", 4, Mechanisms::vanilla()),
            ("16T(vanilla)", 16, Mechanisms::vanilla()),
            ("16T(optimized)", 16, Mechanisms::optimized()),
        ] {
            let cpus = WebServing::new(workers, cores, rate).total_cpus();
            let cfg = RunConfig::vanilla(cpus)
                .with_mech(mech)
                .with_seed(opts.seed)
                .with_max_time(duration);
            let idx = sweep.add(label, cfg, move || {
                Box::new(WebServing::new(workers, cores, rate))
            });
            arms.push((cores, label, idx));
        }
    }
    let r = sweep.run();

    let mut t = TextTable::new([
        "cores",
        "arm",
        "tput(op/s)",
        "p50(us)",
        "p99(us)",
        "p999(us)",
    ]);
    for (cores, label, idx) in arms {
        t.row([
            cores.to_string(),
            label.to_string(),
            format!("{:.0}", r[idx].throughput_ops()),
            format!("{}", r[idx].latency_exact.p50() / 1_000),
            format!("{}", r[idx].latency_exact.p99() / 1_000),
            format!("{}", r[idx].latency_exact.p999() / 1_000),
        ]);
    }
    t
}

/// Extension: neighbour-aware spin management vs the paper's mechanisms
/// on tail latency. One request-shaped workload per family, three arms
/// each — vanilla, optimized (VB+BWD), and neighbour-aware (VB + the
/// interference-sized spin manager) — compared on the exact p99/p999 of
/// the run's request digest (the fig13-style A/B the mechanism exists
/// for).
pub fn ext_neighbour_tails(opts: ExpOpts) -> TextTable {
    use oversub_locks::SpinPolicy;
    use oversub_workloads::memcached::Memcached;

    let duration = SimTime::from_millis(((800.0 * opts.scale).max(200.0)) as u64);
    let items = ((160.0 * opts.scale).max(30.0)) as usize;
    let regions = ((200.0 * opts.scale).max(40.0)) as usize;
    let mechs = [
        ("vanilla", Mechanisms::vanilla()),
        ("optimized", Mechanisms::optimized()),
        ("neighbour", Mechanisms::neighbour_aware()),
    ];
    let mut sweep = Sweep::new();
    // (family row label, [arm index per mechanism])
    let mut arms: Vec<(&str, Vec<usize>)> = Vec::new();

    // memcached: 16 workers on 4 server cores, capacity-tracking load.
    let idxs = mechs
        .iter()
        .map(|&(_, mech)| {
            let cfg = RunConfig::vanilla(Memcached::paper(16, 4, 160_000.0).total_cpus())
                .with_mech(mech)
                .with_seed(opts.seed)
                .with_max_time(duration);
            sweep.add("memcached", cfg, move || {
                Box::new(Memcached::paper(16, 4, 160_000.0))
            })
        })
        .collect();
    arms.push(("memcached", idxs));

    // web-serving: 16 workers on 4 server cores.
    let idxs = mechs
        .iter()
        .map(|&(_, mech)| {
            let cfg = RunConfig::vanilla(WebServing::new(16, 4, 60_000.0).total_cpus())
                .with_mech(mech)
                .with_seed(opts.seed)
                .with_max_time(duration);
            sweep.add("web-serving", cfg, move || {
                Box::new(WebServing::new(16, 4, 60_000.0))
            })
        })
        .collect();
    arms.push(("web-serving", idxs));

    // pipeline, both waiting flavours: 16 stages on 8 cores — the
    // oversubscribed cascade whose spins the mechanisms act on.
    for (label, flavor) in [
        ("pipeline(flags)", WaitFlavor::Flags),
        (
            "pipeline(spinlock)",
            WaitFlavor::SpinLock(SpinPolicy::ttas()),
        ),
    ] {
        let idxs = mechs
            .iter()
            .map(|&(_, mech)| {
                let cfg = RunConfig::vanilla(8)
                    .with_machine(MachineSpec::Paper8Cores)
                    .with_mech(mech)
                    .with_seed(opts.seed);
                sweep.add(label, cfg, move || {
                    Box::new(SpinPipeline::new(16, items, flavor))
                })
            })
            .collect();
        arms.push((label, idxs));
    }

    // fork-join: 32-thread pool, all active, on 8 cores.
    let idxs = mechs
        .iter()
        .map(|&(_, mech)| {
            let cfg = RunConfig::vanilla(8)
                .with_machine(MachineSpec::PaperN(8))
                .with_mech(mech)
                .with_seed(opts.seed);
            sweep.add("fork-join", cfg, move || {
                Box::new(ForkJoin::new(32, 32, regions, 64, 8_000))
            })
        })
        .collect();
    arms.push(("fork-join", idxs));

    let r = sweep.run();
    let mut t = TextTable::new([
        "workload",
        "vanilla p99(us)",
        "optimized p99(us)",
        "neighbour p99(us)",
        "neighbour p999(us)",
        "neighbour exits",
    ]);
    for (label, idxs) in arms {
        let [van, opt, nbr] = idxs[..] else {
            unreachable!("three mechanism arms per family")
        };
        let nbr_exits = r[nbr].mech("neighbour").map_or(0, |c| c.spin_exits);
        t.row([
            label.to_string(),
            format!("{}", r[van].latency_exact.p99() / 1_000),
            format!("{}", r[opt].latency_exact.p99() / 1_000),
            format!("{}", r[nbr].latency_exact.p99() / 1_000),
            format!("{}", r[nbr].latency_exact.p999() / 1_000),
            nbr_exits.to_string(),
        ]);
    }
    t
}

/// Extension: the overload goodput frontier (the robustness study's
/// headline table). Offered load sweeps 0.5×–2.0× of the memcached
/// server's nominal capacity with a 3 ms request deadline and the
/// deterministic retry client (budget 3, full-jitter backoff), under two
/// admission modes:
///
/// - `off` — no shedding: past saturation the standing queue grows
///   without bound, every completion lands beyond its deadline, and the
///   retry client amplifies the offered load (the metastable collapse);
/// - `codel` — the CoDel-style queue-delay shedder: sustained sojourn
///   above target sheds arrivals at the generator→worker boundary, so
///   admitted requests keep completing within deadline and goodput
///   degrades gracefully instead of collapsing.
///
/// All arms run through [`Sweep`], so the rendered table is byte-identical
/// at any jobs count and across warm-cache replays.
pub fn ext_overload_frontier(opts: ExpOpts) -> TextTable {
    use oversub_workloads::admission::{AdmissionPolicy, OverloadParams, RetryPolicy};
    use oversub_workloads::memcached::Memcached;

    // Nominal capacity of 2 server cores at the paper's service times
    // (mean ~9.5 us/op → ~210 kop/s); the sweep is relative to this.
    const CAPACITY_OPS: f64 = 200_000.0;
    let duration = SimTime::from_millis(((600.0 * opts.scale).max(60.0)) as u64);
    let mechs = [
        ("vanilla", Mechanisms::vanilla()),
        ("vb", Mechanisms::vb_only()),
        ("bwd", Mechanisms::bwd_only()),
        ("neighbour", Mechanisms::neighbour_aware()),
    ];
    let loads = [0.5, 1.0, 1.5, 2.0];
    let modes = [
        ("off", AdmissionPolicy::None),
        (
            "codel",
            AdmissionPolicy::CoDel {
                target_ns: 300 * MICROS,
                interval_ns: 500 * MICROS,
            },
        ),
    ];

    let mut sweep = Sweep::new();
    // (load multiple, mode label, [arm index per mechanism])
    let mut rows: Vec<(f64, &str, Vec<usize>)> = Vec::new();
    for &load in &loads {
        for &(mode_label, admission) in &modes {
            let idxs = mechs
                .iter()
                .map(|&(mech_label, mech)| {
                    let rate = CAPACITY_OPS * load;
                    let ov = OverloadParams::disabled()
                        .with_deadline_ns(3 * MILLIS)
                        .with_admission(admission)
                        .with_retry(RetryPolicy::default());
                    let cfg = RunConfig::vanilla(Memcached::paper(8, 2, rate).total_cpus())
                        .with_mech(mech)
                        .with_seed(opts.seed)
                        .with_max_time(duration)
                        .with_overload(ov);
                    let label = format!("overload/{mech_label}/{mode_label}/{load}x");
                    sweep.add(label, cfg, move || Box::new(Memcached::paper(8, 2, rate)))
                })
                .collect();
            rows.push((load, mode_label, idxs));
        }
    }
    let r = sweep.run();

    let mut t = TextTable::new([
        "load",
        "shedding",
        "vanilla good(op/s)",
        "vb good(op/s)",
        "bwd good(op/s)",
        "neighbour good(op/s)",
        "bwd shed",
        "bwd retries",
    ]);
    for (load, mode, idxs) in rows {
        let good = |i: usize| format!("{:.0}", r[idxs[i]].goodput_ops());
        let bwd_gp = &r[idxs[2]].goodput;
        t.row([
            format!("{load:.1}x"),
            mode.to_string(),
            good(0),
            good(1),
            good(2),
            good(3),
            bwd_gp.shed.to_string(),
            bwd_gp.retries.to_string(),
        ]);
    }
    t
}
