//! Ablations, seed-sensitivity sweeps, and extensions beyond the paper.

use super::{fmt_s, run_skeleton, ExpOpts};
use crate::config::{MachineSpec, Mechanisms, RunConfig};
use crate::engine::run_labelled;
use oversub_hw::AccessPattern;
use oversub_metrics::{Summary, TextTable};
use oversub_simcore::{SimTime, MICROS};
use oversub_workloads::forkjoin::ForkJoin;
use oversub_workloads::pipeline::{SpinPipeline, WaitFlavor};
use oversub_workloads::skeletons::{BenchProfile, Skeleton};
use oversub_workloads::webserving::WebServing;

/// Ablation: BWD timer interval sweep on the `lu` skeleton (32T / 8c):
/// detection latency vs timer overhead.
pub fn ablation_bwd_interval(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new(["interval(us)", "makespan(s)", "detections", "checks"]);
    for &us in &[25u64, 50, 100, 200, 400, 800] {
        let profile = BenchProfile::by_name("lu").unwrap();
        let mut wl = Skeleton::scaled(profile, 32, opts.scale);
        let mut cfg = RunConfig::vanilla(8)
            .with_machine(MachineSpec::Paper8Cores)
            .with_mech(Mechanisms::optimized())
            .with_seed(opts.seed);
        cfg.bwd_params.interval_ns = us * MICROS;
        let r = run_labelled(&mut wl, &cfg, "lu");
        t.row([
            us.to_string(),
            fmt_s(&r),
            r.bwd.detections.to_string(),
            r.bwd.checks.to_string(),
        ]);
    }
    t
}

/// Ablation: LBR-only vs LBR+PMC detection heuristics — false positives on
/// a blocking NPB benchmark with tight-loop bait.
pub fn ablation_bwd_heuristics(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new(["heuristic", "FPs", "windows", "makespan(s)"]);
    for (label, use_pmc) in [("LBR+PMC", true), ("LBR-only", false)] {
        let profile = BenchProfile::by_name("cg").unwrap();
        let mut wl = Skeleton::scaled(profile, 32, opts.scale);
        let mut cfg = RunConfig::vanilla(8)
            .with_machine(MachineSpec::Paper8Cores)
            .with_mech(Mechanisms::optimized())
            .with_seed(opts.seed);
        cfg.bwd_params.use_pmc = use_pmc;
        let r = run_labelled(&mut wl, &cfg, label);
        t.row([
            label.to_string(),
            r.bwd.false_positives.to_string(),
            r.bwd.checks.to_string(),
            fmt_s(&r),
        ]);
    }
    t
}

/// Ablation: VB's auto-disable heuristic under no oversubscription
/// (8T / 8c): with the heuristic, VB defers to vanilla sleeps; without it,
/// every wait is virtual.
pub fn ablation_vb_auto_disable(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new(["arm", "makespan(s)", "virtual-waits", "sleep-waits"]);
    for (label, auto) in [("auto-disable-on", true), ("auto-disable-off", false)] {
        let profile = BenchProfile::by_name("streamcluster").unwrap();
        let mut wl = Skeleton::scaled(profile, 8, opts.scale);
        let mut cfg = RunConfig::vanilla(8)
            .with_machine(MachineSpec::Paper8Cores)
            .with_mech(Mechanisms::vb_only())
            .with_seed(opts.seed);
        cfg.mech.vb_auto_disable = auto;
        let r = run_labelled(&mut wl, &cfg, label);
        t.row([
            label.to_string(),
            fmt_s(&r),
            r.blocking.virtual_waits.to_string(),
            r.blocking.sleep_waits.to_string(),
        ]);
    }
    t
}

/// Run one skeleton arm across `seeds` seeds and summarize the makespan
/// (virtual seconds). Runs are deterministic per seed; the spread captures
/// sensitivity to workload jitter and placement.
pub fn multi_seed_makespan(
    name: &str,
    threads: usize,
    mech: Mechanisms,
    opts: ExpOpts,
    seeds: usize,
) -> Summary {
    let samples: Vec<f64> = (0..seeds.max(1))
        .map(|k| {
            let o = ExpOpts {
                seed: opts.seed + k as u64 * 7919,
                ..opts
            };
            run_skeleton(name, threads, MachineSpec::Paper8Cores, mech, o).makespan_secs()
        })
        .collect();
    Summary::of(&samples)
}

/// Seed-sensitivity table: the Figure 9 headline arms across 5 seeds,
/// reported as mean ± 95% CI — evidence the shapes are not seed artifacts.
pub fn seed_sensitivity(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new(["benchmark", "8T(van)", "32T(van)", "32T(opt)"]);
    for name in ["streamcluster", "cg", "lu"] {
        let b = multi_seed_makespan(name, 8, Mechanisms::vanilla(), opts, 5);
        let o = multi_seed_makespan(name, 32, Mechanisms::vanilla(), opts, 5);
        let x = multi_seed_makespan(name, 32, Mechanisms::optimized(), opts, 5);
        t.row([name.to_string(), b.display(3), o.display(3), x.display(3)]);
    }
    t
}

/// Ablation: migration-cost sensitivity — scale the cross-node refill
/// multiplier and watch the vanilla oversubscription penalty move while
/// the VB arm stays flat (it barely migrates).
pub fn ablation_migration_cost(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new([
        "remote-mult",
        "32T(van)",
        "32T(opt)",
        "van-migr",
        "opt-migr",
    ]);
    for &mult in &[1.0f64, 1.6, 2.5, 4.0] {
        let run = |mech: Mechanisms| {
            let profile = BenchProfile::by_name("streamcluster").unwrap();
            let mut wl = Skeleton::scaled(profile, 32, opts.scale);
            let mut cfg = RunConfig::vanilla(8)
                .with_machine(MachineSpec::Paper8Cores)
                .with_mech(mech)
                .with_seed(opts.seed);
            cfg.cache.remote_dram_mult = mult;
            run_labelled(&mut wl, &cfg, "streamcluster")
        };
        let van = run(Mechanisms::vanilla());
        let opt = run(Mechanisms::optimized());
        t.row([
            format!("{mult:.1}"),
            fmt_s(&van),
            fmt_s(&opt),
            van.tasks.migrations().to_string(),
            opt.tasks.migrations().to_string(),
        ]);
    }
    t
}

/// Ablation: wakeup-path cost sweep — scale the fixed `try_to_wake_up`
/// cost and watch vanilla blocking degrade while VB is untouched (it
/// never takes that path).
pub fn ablation_wakeup_cost(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new(["wakeup-fixed(ns)", "32T(van)", "32T(opt)"]);
    for &ns in &[350u64, 700, 1_400, 2_800] {
        let run = |mech: Mechanisms| {
            let profile = BenchProfile::by_name("cg").unwrap();
            let mut wl = Skeleton::scaled(profile, 32, opts.scale);
            let mut cfg = RunConfig::vanilla(8)
                .with_machine(MachineSpec::Paper8Cores)
                .with_mech(mech)
                .with_seed(opts.seed);
            cfg.sched.wakeup_fixed_ns = ns;
            run_labelled(&mut wl, &cfg, "cg")
        };
        t.row([
            ns.to_string(),
            fmt_s(&run(Mechanisms::vanilla())),
            fmt_s(&run(Mechanisms::optimized())),
        ]);
    }
    t
}

/// Extension: the §4.3 pipeline microbenchmark (cascading delays), flag
/// flavour, across stage counts on 8 cores.
pub fn ext_pipeline_cascade(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new(["stages", "vanilla(s)", "optimized(s)", "detections"]);
    let items = ((240.0 * opts.scale).max(30.0)) as usize;
    for &stages in &[8usize, 16, 32, 64] {
        let run = |mech: Mechanisms| {
            let mut wl = SpinPipeline::new(stages, items, WaitFlavor::Flags);
            let cfg = RunConfig::vanilla(8)
                .with_machine(MachineSpec::Paper8Cores)
                .with_mech(mech)
                .with_seed(opts.seed);
            run_labelled(&mut wl, &cfg, "pipeline")
        };
        let van = run(Mechanisms::vanilla());
        let opt = run(Mechanisms::bwd_only());
        t.row([
            stages.to_string(),
            fmt_s(&van),
            fmt_s(&opt),
            opt.bwd.detections.to_string(),
        ]);
    }
    t
}

/// Ablation: huge pages — with 2 MiB pages the whole Figure 4 TLB story
/// evaporates (64 L1-TLB entries then reach 128 MiB), so random-access
/// oversubscription loses its TLB benefit. An extension of §2.3's
/// analysis the paper alludes to via its 4 KiB-page arithmetic.
pub fn ablation_hugepages(opts: ExpOpts) -> TextTable {
    use oversub_workloads::micro::ArrayWalk;
    let mut t = TextTable::new(["array", "rnd-r 4K pages(us/CS)", "rnd-r 2M pages(us/CS)"]);
    let passes = ((24.0 * opts.scale).max(4.0)) as u64;
    for &ws in &[512u64 << 10, 8 << 20, 64 << 20] {
        let mut row = vec![if ws >= (1 << 20) {
            format!("{}MB", ws >> 20)
        } else {
            format!("{}KB", ws >> 10)
        }];
        for page in [4096u64, 2 << 20] {
            let run = |threads: usize| {
                let mut wl = ArrayWalk {
                    threads,
                    total_ws: ws,
                    pattern: AccessPattern::RndRead,
                    passes,
                };
                let mut cfg = RunConfig::vanilla(1).with_seed(opts.seed);
                cfg.cache.page_bytes = page;
                run_labelled(&mut wl, &cfg, "hugepages")
            };
            let serial = run(1);
            let over = run(2);
            let ncs = over.cpus.context_switches.max(1);
            let cost_us =
                (over.makespan_ns as f64 - serial.makespan_ns as f64) / ncs as f64 / 1_000.0;
            row.push(format!("{cost_us:.2}"));
        }
        t.row(row);
    }
    t
}

/// Extension: dynamic threading (OpenMP-style per-region activation) vs
/// oversubscription, the alternative the paper's related-work section
/// argues against. A 32-thread pool runs region-heavy fork-join work on a
/// varying number of cores: the "dynamic" arm activates exactly
/// `cores` threads per region, the oversubscribed arms activate all 32.
pub fn ext_forkjoin_dynamic_threading(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new([
        "cores",
        "dynamic(active=cores)",
        "32-active(vanilla)",
        "32-active(optimized)",
    ]);
    let regions = ((400.0 * opts.scale).max(60.0)) as usize;
    for &cores in &[4usize, 8, 16] {
        let run = |active: usize, mech: Mechanisms| {
            // Region-heavy: little work per region, so the fork/join
            // wake-ups dominate and the mechanisms matter.
            let mut wl = ForkJoin {
                pool: 32,
                active,
                regions,
                chunks: 64,
                chunk_ns: 8_000,
            };
            let cfg = RunConfig::vanilla(cores)
                .with_machine(MachineSpec::PaperN(cores))
                .with_mech(mech)
                .with_seed(opts.seed);
            run_labelled(&mut wl, &cfg, "fork-join")
        };
        let dynamic = run(cores, Mechanisms::vanilla());
        let naive = run(32, Mechanisms::vanilla());
        let opt = run(32, Mechanisms::optimized());
        t.row([
            cores.to_string(),
            fmt_s(&dynamic),
            fmt_s(&naive),
            fmt_s(&opt),
        ]);
    }
    t
}

/// Extension: the CloudSuite-style web-serving workload (the paper cites
/// its results as confirming the memcached findings).
pub fn ext_web_serving(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new(["cores", "arm", "tput(op/s)", "p95(us)", "p99(us)"]);
    let duration = SimTime::from_millis(((1_200.0 * opts.scale).max(250.0)) as u64);
    for &cores in &[4usize, 8] {
        let rate = 15_000.0 * cores as f64;
        for (label, workers, mech) in [
            ("4T(vanilla)", 4, Mechanisms::vanilla()),
            ("16T(vanilla)", 16, Mechanisms::vanilla()),
            ("16T(optimized)", 16, Mechanisms::optimized()),
        ] {
            let mut wl = WebServing::new(workers, cores, rate);
            let cpus = wl.total_cpus();
            let cfg = RunConfig::vanilla(cpus)
                .with_mech(mech)
                .with_seed(opts.seed)
                .with_max_time(duration);
            let r = run_labelled(&mut wl, &cfg, label);
            t.row([
                cores.to_string(),
                label.to_string(),
                format!("{:.0}", r.throughput_ops()),
                format!("{}", r.latency.percentile(95.0) / 1_000),
                format!("{}", r.latency.percentile(99.0) / 1_000),
            ]);
        }
    }
    t
}
