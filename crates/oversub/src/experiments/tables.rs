//! Drivers for the paper's tables (1–3).
//!
//! Like the figure drivers, each table submits all its arms to one
//! [`Sweep`] batch and formats afterwards; table 1 shares its arms with
//! Figure 9 through the run cache (identical configs execute once per
//! process).

use super::{fig09_submit, submit_skeleton, ExpOpts};
use crate::config::{MachineSpec, Mechanisms, RunConfig};
use crate::sweep::Sweep;
use oversub_locks::SpinPolicy;
use oversub_metrics::TextTable;
use oversub_workloads::micro::TpProbe;

/// Table 1: CPU utilization and migration counts for the 13 blocking
/// benchmarks under {8T, 32T, 32T optimized}, plus the per-mechanism
/// activity of the optimized arm (VB parks, BWD skips).
pub fn table1_runtime_stats(opts: ExpOpts) -> TextTable {
    let mut sweep = Sweep::new();
    let arms: Vec<_> = oversub_workloads::skeletons::BenchProfile::fig9_set()
        .into_iter()
        .map(|p| {
            (
                p,
                fig09_submit(&mut sweep, p.name, MachineSpec::Paper8Cores, opts),
            )
        })
        .collect();
    let r = sweep.run();

    let mut t = TextTable::new([
        "app",
        "util-8T",
        "util-32T",
        "util-Opt",
        "in-node-8T",
        "in-node-32T",
        "in-node-Opt",
        "cross-8T",
        "cross-32T",
        "cross-Opt",
        "vb-parks-Opt",
        "bwd-skips-Opt",
    ]);
    for (p, (b, o, x)) in arms {
        let (b, o, x) = (&r[b], &r[o], &r[x]);
        let vb_parks = x.mech("vb").map(|m| m.parks).unwrap_or(0);
        let bwd_skips = x.mech("bwd").map(|m| m.skips_set).unwrap_or(0);
        t.row([
            p.name.to_string(),
            format!("{:.0}", b.cpu_utilization_pct()),
            format!("{:.0}", o.cpu_utilization_pct()),
            format!("{:.0}", x.cpu_utilization_pct()),
            b.tasks.migrations_local.to_string(),
            o.tasks.migrations_local.to_string(),
            x.tasks.migrations_local.to_string(),
            b.tasks.migrations_remote.to_string(),
            o.tasks.migrations_remote.to_string(),
            x.tasks.migrations_remote.to_string(),
            vb_parks.to_string(),
            bwd_skips.to_string(),
        ]);
    }
    t
}

/// Table 2: BWD's true-positive rate for the ten spinlocks (holder /
/// contender probe on one core).
pub fn table2_bwd_tp(opts: ExpOpts) -> TextTable {
    let tries = ((4_000.0 * opts.scale).max(150.0)) as usize;
    let mut sweep = Sweep::new();
    let arms: Vec<_> = SpinPolicy::all()
        .into_iter()
        .map(|policy| {
            let cfg = RunConfig::vanilla(1)
                .with_mech(Mechanisms::bwd_only())
                .with_seed(opts.seed);
            let idx = sweep.add(policy.name, cfg, move || {
                Box::new(TpProbe::new(policy, tries))
            });
            (policy, idx)
        })
        .collect();
    let r = sweep.run();

    let mut t = TextTable::new(["lock", "tries", "TPs", "sensitivity(%)"]);
    for (policy, idx) in arms {
        let rep = &r[idx];
        let episodes = rep.bwd.spin_episodes.max(1);
        let sens = 100.0 * rep.bwd.true_positives.min(episodes) as f64 / episodes as f64;
        t.row([
            policy.name.to_string(),
            episodes.to_string(),
            rep.bwd.true_positives.to_string(),
            format!("{sens:.2}"),
        ]);
    }
    t
}

/// Table 3: BWD's false-positive rate on 8 blocking NPB benchmarks that
/// contain no synchronization spinning (their tight loops are the bait),
/// plus the FP-induced overhead.
pub fn table3_bwd_fp(opts: ExpOpts) -> TextTable {
    let names = ["is", "ep", "cg", "mg", "ft", "sp", "bt", "ua"];
    let mut sweep = Sweep::new();
    let arms: Vec<_> = names
        .into_iter()
        .map(|name| {
            let without = submit_skeleton(
                &mut sweep,
                name,
                32,
                MachineSpec::Paper8Cores,
                Mechanisms::vb_only(),
                opts,
            );
            let with = submit_skeleton(
                &mut sweep,
                name,
                32,
                MachineSpec::Paper8Cores,
                Mechanisms::optimized(),
                opts,
            );
            (name, without, with)
        })
        .collect();
    let r = sweep.run();

    let mut t = TextTable::new(["app", "windows", "FPs", "specificity(%)", "FP-overhead(%)"]);
    for (name, without, with) in arms {
        let (without, with) = (&r[without], &r[with]);
        let checks = with.bwd.checks.max(1);
        let spec = 100.0 * (1.0 - with.bwd.false_positives as f64 / checks as f64);
        let overhead =
            100.0 * (with.makespan_ns as f64 / without.makespan_ns.max(1) as f64 - 1.0).max(0.0);
        t.row([
            name.to_string(),
            checks.to_string(),
            with.bwd.false_positives.to_string(),
            format!("{spec:.2}"),
            format!("{overhead:.2}"),
        ]);
    }
    t
}
