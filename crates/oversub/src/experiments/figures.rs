//! Drivers for the paper's figures (1–4, 9–15).
//!
//! Every driver is two-phase: it *submits* all its simulation arms to a
//! [`Sweep`] batch (each arm built from owned inputs, so arms are safe to
//! execute in any order on the worker pool), then *formats* the results —
//! which come back in submission order, keeping the rendered tables
//! byte-identical at any jobs count.

use super::{fig09_submit, fmt_s, fmt_x, ExpOpts};
use crate::config::{MachineSpec, Mechanisms, RunConfig};
use crate::sweep::Sweep;
use oversub_bwd::ExecEnv;
use oversub_hw::AccessPattern;
use oversub_locks::{MutexKind, SpinPolicy};
use oversub_metrics::{RunReport, TextTable};
use oversub_simcore::{SimTime, MICROS, MILLIS};
use oversub_workloads::memcached::Memcached;
use oversub_workloads::micro::{ArrayWalk, ComputeYield, Primitive, PrimitiveStress};
use oversub_workloads::skeletons::{BenchProfile, Skeleton};

// ---------------------------------------------------------------------
// Figure 1: the oversubscription survey
// ---------------------------------------------------------------------

/// Figure 1: normalized execution time of all 32 benchmarks with 8T and
/// 32T on 8 cores (vanilla Linux).
pub fn fig01_survey(opts: ExpOpts) -> TextTable {
    let mut sweep = Sweep::new();
    let arms: Vec<(BenchProfile, usize, usize)> = BenchProfile::all()
        .into_iter()
        .map(|p| {
            let base = super::submit_skeleton(
                &mut sweep,
                p.name,
                8,
                MachineSpec::Paper8Cores,
                Mechanisms::vanilla(),
                opts,
            );
            let over = super::submit_skeleton(
                &mut sweep,
                p.name,
                32,
                MachineSpec::Paper8Cores,
                Mechanisms::vanilla(),
                opts,
            );
            (p, base, over)
        })
        .collect();
    let r = sweep.run();

    let mut t = TextTable::new(["benchmark", "group", "8T", "32T(vanilla)", "paper-32T"]);
    for (p, base, over) in arms {
        t.row([
            p.name.to_string(),
            format!("{:?}", p.group),
            "1.00".to_string(),
            fmt_x(r[over].normalized_to(&r[base])),
            fmt_x(p.paper_fig1_slowdown),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 2: direct cost of context switching
// ---------------------------------------------------------------------

/// Figure 2: execution time of the compute(+atomic) microbenchmark with
/// 1..=8 threads on one core, normalized to one thread.
pub fn fig02_direct_cost(opts: ExpOpts) -> TextTable {
    let total = ((400.0 * opts.scale).max(40.0) as u64) * MILLIS;
    let mut sweep = Sweep::new();
    let mut submit = |atomic: bool, n: usize| {
        let cfg = RunConfig::vanilla(1).with_seed(opts.seed);
        sweep.add("fig2", cfg, move || {
            Box::new(if atomic {
                ComputeYield::fig2b(n, total)
            } else {
                ComputeYield::fig2a(n, total)
            })
        })
    };
    // The n=1 arms double as the normalization bases; the run cache
    // collapses the duplicates.
    let base_a = submit(false, 1);
    let base_b = submit(true, 1);
    let arms: Vec<(usize, usize, usize)> = (1..=8usize)
        .map(|n| (n, submit(false, n), submit(true, n)))
        .collect();
    let r = sweep.run();

    let mut t = TextTable::new(["threads", "pure-compute", "with-atomic"]);
    let (norm_a, norm_b) = (r[base_a].makespan_ns as f64, r[base_b].makespan_ns as f64);
    for (n, a, b) in arms {
        t.row([
            n.to_string(),
            fmt_x(r[a].makespan_ns as f64 / norm_a),
            fmt_x(r[b].makespan_ns as f64 / norm_b),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 3: synchronization intervals
// ---------------------------------------------------------------------

/// Figure 3: histogram of the benchmarks' synchronization intervals
/// (100 µs bins; the last bin collects everything above 1 ms).
pub fn fig03_sync_intervals() -> TextTable {
    let mut bins = [0usize; 11];
    for p in BenchProfile::all() {
        let us = p.sync_interval_ns / MICROS;
        let idx = ((us / 100) as usize).min(10);
        bins[idx] += 1;
    }
    let mut t = TextTable::new(["interval(us)", "programs"]);
    for (i, &count) in bins.iter().enumerate() {
        let label = if i == 10 {
            ">1000".to_string()
        } else {
            format!("{}-{}", i * 100, (i + 1) * 100)
        };
        t.row([label, count.to_string()]);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 4: indirect cost of context switching
// ---------------------------------------------------------------------

/// Figure 4: indirect cost per context switch (µs; negative = benefit) of
/// two threads sharing one core vs one thread, across working-set sizes
/// and the four access patterns.
pub fn fig04_indirect_cost(opts: ExpOpts) -> TextTable {
    let sizes: Vec<u64> = (17..=27).map(|s| 1u64 << s).collect(); // 128KB..128MB
    let passes = ((24.0 * opts.scale).max(4.0)) as u64;
    let mut sweep = Sweep::new();
    let mut submit = |ws: u64, pattern: AccessPattern, threads: usize| {
        let cfg = RunConfig::vanilla(1).with_seed(opts.seed);
        sweep.add("fig4", cfg, move || {
            Box::new(ArrayWalk {
                threads,
                total_ws: ws,
                pattern,
                passes,
            })
        })
    };
    let mut arms = Vec::new(); // (ws, [(serial, over); 4])
    for &ws in &sizes {
        let cells: Vec<(usize, usize)> = AccessPattern::ALL
            .into_iter()
            .map(|pattern| (submit(ws, pattern, 1), submit(ws, pattern, 2)))
            .collect();
        arms.push((ws, cells));
    }
    let r = sweep.run();

    let mut t = TextTable::new(["array", "seq-r", "seq-rmw", "rnd-r", "rnd-rmw"]);
    for (ws, cells) in arms {
        let mut row = vec![if ws >= (1 << 20) {
            format!("{}MB", ws >> 20)
        } else {
            format!("{}KB", ws >> 10)
        }];
        for (serial, over) in cells {
            let ncs = r[over].cpus.context_switches.max(1);
            let cost_us =
                (r[over].makespan_ns as f64 - r[serial].makespan_ns as f64) / ncs as f64 / 1_000.0;
            row.push(format!("{cost_us:.2}"));
        }
        t.row(row);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 9: virtual blocking on the blocking benchmarks
// ---------------------------------------------------------------------

/// Figure 9: normalized execution time of the 13 blocking benchmarks under
/// {8T vanilla, 32T vanilla, 32T optimized} on 8 cores and on 8
/// hyperthreads of 4 cores.
pub fn fig09_vb_blocking(opts: ExpOpts) -> TextTable {
    let mut sweep = Sweep::new();
    let arms: Vec<_> = BenchProfile::fig9_set()
        .into_iter()
        .map(|p| {
            let cores = fig09_submit(&mut sweep, p.name, MachineSpec::Paper8Cores, opts);
            let hts = fig09_submit(&mut sweep, p.name, MachineSpec::Paper8Hyperthreads, opts);
            (p, cores, hts)
        })
        .collect();
    let r = sweep.run();

    let mut t = TextTable::new([
        "benchmark",
        "8T(van-8c)",
        "32T(van-8c)",
        "32T(opt-8c)",
        "8T(van-8ht)",
        "32T(van-8ht)",
        "32T(opt-8ht)",
    ]);
    for (p, (b8, o8, x8), (bh, oh, xh)) in arms {
        t.row([
            p.name.to_string(),
            "1.00".into(),
            fmt_x(r[o8].normalized_to(&r[b8])),
            fmt_x(r[x8].normalized_to(&r[b8])),
            "1.00".into(),
            fmt_x(r[oh].normalized_to(&r[bh])),
            fmt_x(r[xh].normalized_to(&r[bh])),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 10: VB on the pthreads primitives
// ---------------------------------------------------------------------

/// Submit the (vanilla, vb) arm pair behind one Figure 10 speedup cell.
fn primitive_submit(
    sweep: &mut Sweep,
    primitive: Primitive,
    threads: usize,
    cores: usize,
    opts: ExpOpts,
) -> (usize, usize) {
    let rounds = ((10_000.0 * opts.scale).max(300.0)) as usize;
    let cfg = |mech: Mechanisms| {
        RunConfig::vanilla(cores)
            .with_machine(MachineSpec::PaperN(cores))
            .with_mech(mech)
            .with_seed(opts.seed)
    };
    let mk = move || {
        Box::new(PrimitiveStress::new(threads, rounds, primitive, 2_000))
            as Box<dyn oversub_workloads::Workload>
    };
    let vanilla = sweep.add("vanilla", cfg(Mechanisms::vanilla()), mk);
    let vb = sweep.add("vb", cfg(Mechanisms::vb_only()), mk);
    (vanilla, vb)
}

fn primitive_speedup(r: &[RunReport], pair: (usize, usize)) -> f64 {
    r[pair.0].makespan_ns as f64 / r[pair.1].makespan_ns.max(1) as f64
}

/// Figure 10(a): speedup of VB over vanilla for mutex / condvar / barrier
/// with 1..=32 threads on a single core.
pub fn fig10a_primitives_threads(opts: ExpOpts) -> TextTable {
    let mut sweep = Sweep::new();
    let arms: Vec<_> = [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .map(|n| {
            (
                n,
                primitive_submit(&mut sweep, Primitive::Mutex, n, 1, opts),
                primitive_submit(&mut sweep, Primitive::Cond, n, 1, opts),
                primitive_submit(&mut sweep, Primitive::Barrier, n, 1, opts),
            )
        })
        .collect();
    let r = sweep.run();

    let mut t = TextTable::new([
        "threads",
        "pthread_mutex",
        "pthread_cond",
        "pthread_barrier",
    ]);
    for (n, mutex, cond, barrier) in arms {
        t.row([
            n.to_string(),
            fmt_x(primitive_speedup(&r, mutex)),
            fmt_x(primitive_speedup(&r, cond)),
            fmt_x(primitive_speedup(&r, barrier)),
        ]);
    }
    t
}

/// Figure 10(b): speedup of VB over vanilla with 32 threads on 1..=32
/// cores.
pub fn fig10b_primitives_cores(opts: ExpOpts) -> TextTable {
    let mut sweep = Sweep::new();
    let arms: Vec<_> = [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .map(|c| {
            (
                c,
                primitive_submit(&mut sweep, Primitive::Mutex, 32, c, opts),
                primitive_submit(&mut sweep, Primitive::Cond, 32, c, opts),
                primitive_submit(&mut sweep, Primitive::Barrier, 32, c, opts),
            )
        })
        .collect();
    let r = sweep.run();

    let mut t = TextTable::new(["cores", "pthread_mutex", "pthread_cond", "pthread_barrier"]);
    for (c, mutex, cond, barrier) in arms {
        t.row([
            c.to_string(),
            fmt_x(primitive_speedup(&r, mutex)),
            fmt_x(primitive_speedup(&r, cond)),
            fmt_x(primitive_speedup(&r, barrier)),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 11: CPU elasticity
// ---------------------------------------------------------------------

/// Figure 11: execution time (s) of five benchmarks across core counts
/// under {#core-T vanilla, 8T vanilla, 32T vanilla, 32T pinned,
/// 32T optimized}.
pub fn fig11_elasticity(opts: ExpOpts) -> TextTable {
    let mut sweep = Sweep::new();
    let mut arms = Vec::new();
    for name in ["ep", "facesim", "streamcluster", "ocean", "cg"] {
        for &cores in &[2usize, 4, 8, 16, 32] {
            let m = MachineSpec::PaperN(cores);
            let mut submit = |threads: usize, mech: Mechanisms, pinned: bool| {
                let profile = BenchProfile::by_name(name).unwrap();
                let scale = opts.scale;
                let mut cfg = RunConfig::vanilla(cores)
                    .with_machine(m.clone())
                    .with_mech(mech)
                    .with_seed(opts.seed);
                cfg.pinned = pinned;
                sweep.add(name, cfg, move || {
                    Box::new(Skeleton::scaled(profile, threads, scale))
                })
            };
            arms.push((
                name,
                cores,
                submit(cores, Mechanisms::vanilla(), false),
                submit(8, Mechanisms::vanilla(), false),
                submit(32, Mechanisms::vanilla(), false),
                submit(32, Mechanisms::vanilla(), true),
                submit(32, Mechanisms::optimized(), false),
            ));
        }
    }
    let r = sweep.run();

    let mut t = TextTable::new([
        "benchmark",
        "cores",
        "#coreT(van)",
        "8T(van)",
        "32T(van)",
        "32T(pinned)",
        "32T(opt)",
    ]);
    for (name, cores, coret, t8, t32, pinned, opt) in arms {
        t.row([
            name.to_string(),
            cores.to_string(),
            fmt_s(&r[coret]),
            fmt_s(&r[t8]),
            fmt_s(&r[t32]),
            fmt_s(&r[pinned]),
            fmt_s(&r[opt]),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 12: memcached
// ---------------------------------------------------------------------

/// Figure 12: memcached throughput / mean / exact p50/p99/p999 under {4T
/// vanilla, 16T vanilla, 16T optimized} on 4, 8, and 16 server cores.
pub fn fig12_memcached(opts: ExpOpts) -> TextTable {
    let duration = SimTime::from_millis(((2_000.0 * opts.scale).max(300.0)) as u64);
    let mut sweep = Sweep::new();
    let mut arms = Vec::new();
    for &cores in &[4usize, 8, 16] {
        // Offered load tracks capacity (~80%), as a closed-loop mutilate
        // client effectively does; a fixed open-loop rate would saturate
        // the small configurations into unbounded queueing.
        let rate = (45_000.0 * cores as f64).min(420_000.0);
        for (label, workers, mech) in [
            ("4T(vanilla)", 4, Mechanisms::vanilla()),
            ("16T(vanilla)", 16, Mechanisms::vanilla()),
            ("16T(optimized)", 16, Mechanisms::optimized()),
        ] {
            let clients = (rate / 70_000.0).ceil() as usize;
            let mk = move || {
                let mut wl = Memcached::paper(workers, cores, rate);
                wl.clients = clients;
                Box::new(wl) as Box<dyn oversub_workloads::Workload>
            };
            let cpus = {
                let mut probe = Memcached::paper(workers, cores, rate);
                probe.clients = clients;
                probe.total_cpus()
            };
            let cfg = RunConfig::vanilla(cpus)
                .with_mech(mech)
                .with_seed(opts.seed)
                .with_max_time(duration);
            arms.push((cores, label, sweep.add(label, cfg, mk)));
        }
    }
    let r = sweep.run();

    let mut t = TextTable::new([
        "cores",
        "arm",
        "throughput(op/s)",
        "mean(us)",
        "p50(us)",
        "p99(us)",
        "p999(us)",
    ]);
    for (cores, label, idx) in arms {
        let rep = &r[idx];
        t.row([
            cores.to_string(),
            label.to_string(),
            format!("{:.0}", rep.throughput_ops()),
            format!("{:.0}", rep.latency.mean() / 1_000.0),
            format!("{}", rep.latency_exact.p50() / 1_000),
            format!("{}", rep.latency_exact.p99() / 1_000),
            format!("{}", rep.latency_exact.p999() / 1_000),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 13: the ten spinlocks
// ---------------------------------------------------------------------

/// Figure 13: execution time (s) of the spinlock stress benchmark for all
/// ten algorithms, in a container or a VM (the VM adds the PLE arm).
pub fn fig13_spinlocks(env: ExecEnv, opts: ExpOpts) -> TextTable {
    use oversub_workloads::micro::SpinlockStress;
    let iters = ((1_600.0 * opts.scale).max(96.0)) as usize;
    let mut sweep = Sweep::new();
    let mut arms = Vec::new();
    for policy in SpinPolicy::all() {
        let mut submit = |threads: usize, mech: Mechanisms| {
            let mut cfg = RunConfig::vanilla(8)
                .with_machine(MachineSpec::Paper8Cores)
                .with_mech(mech)
                .with_seed(opts.seed);
            cfg.env = env;
            sweep.add(policy.name, cfg, move || {
                Box::new(SpinlockStress::fig13(threads, policy, iters))
            })
        };
        let base = submit(8, Mechanisms::vanilla());
        let over = submit(32, Mechanisms::vanilla());
        let ple = (env == ExecEnv::Vm).then(|| submit(32, Mechanisms::ple_only()));
        let opt = submit(32, Mechanisms::bwd_only());
        arms.push((policy, base, over, ple, opt));
    }
    let r = sweep.run();

    let header: Vec<&str> = match env {
        ExecEnv::Container => vec!["lock", "8T(vanilla)", "32T(vanilla)", "32T(optimized)"],
        ExecEnv::Vm => vec![
            "lock",
            "8T(vanilla)",
            "32T(vanilla)",
            "32T(PLE)",
            "32T(optimized)",
        ],
    };
    let mut t = TextTable::new(header);
    for (policy, base, over, ple, opt) in arms {
        let mut row = vec![policy.name.to_string(), fmt_s(&r[base]), fmt_s(&r[over])];
        if let Some(ple) = ple {
            row.push(fmt_s(&r[ple]));
        }
        row.push(fmt_s(&r[opt]));
        t.row(row);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 14: user-customized spinning
// ---------------------------------------------------------------------

/// Figure 14: execution time (s) of `lu` and `volrend` with 8/16/32
/// threads on 8 cores, in containers and VMs, under vanilla / PLE /
/// optimized.
pub fn fig14_custom_spin(opts: ExpOpts) -> TextTable {
    let mut sweep = Sweep::new();
    let mut arms = Vec::new();
    for name in ["lu", "volrend"] {
        for env in [ExecEnv::Container, ExecEnv::Vm] {
            for &threads in &[8usize, 16, 32] {
                let mut submit = |mech: Mechanisms| {
                    let profile = BenchProfile::by_name(name).unwrap();
                    let scale = opts.scale;
                    let mut cfg = RunConfig::vanilla(8)
                        .with_machine(MachineSpec::Paper8Cores)
                        .with_mech(mech)
                        .with_seed(opts.seed);
                    cfg.env = env;
                    sweep.add(name, cfg, move || {
                        Box::new(Skeleton::scaled(profile, threads, scale))
                    })
                };
                let vanilla = submit(Mechanisms::vanilla());
                let ple = (env == ExecEnv::Vm).then(|| submit(Mechanisms::ple_only()));
                let opt = submit(Mechanisms::optimized());
                arms.push((name, env, threads, vanilla, ple, opt));
            }
        }
    }
    let r = sweep.run();

    let mut t = TextTable::new(["benchmark", "env", "threads", "vanilla", "PLE", "optimized"]);
    for (name, env, threads, vanilla, ple, opt) in arms {
        t.row([
            name.to_string(),
            format!("{env:?}"),
            threads.to_string(),
            fmt_s(&r[vanilla]),
            ple.map(|i| fmt_s(&r[i]))
                .unwrap_or_else(|| "n/a".to_string()),
            fmt_s(&r[opt]),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 15: SHFLLOCK comparison
// ---------------------------------------------------------------------

/// Figure 15: normalized execution time (to the 8T pthread baseline) of
/// five benchmarks at 32T/8c with the synchronization library replaced by
/// each lock design, vs our optimized kernel.
pub fn fig15_shfllock(opts: ExpOpts) -> TextTable {
    let spin_ns = 150_000; // spin budget of the spin-then-park designs
    let mut sweep = Sweep::new();
    let mut arms = Vec::new();
    for name in ["freqmine", "streamcluster", "lu_cb", "ocean", "radix"] {
        let profile = BenchProfile::by_name(name).unwrap();
        let mut submit = |threads: usize, kind: Option<MutexKind>, mech: Mechanisms| {
            let scale = opts.scale;
            let cfg = RunConfig::vanilla(8)
                .with_machine(MachineSpec::Paper8Cores)
                .with_mech(mech)
                .with_seed(opts.seed);
            sweep.add(name, cfg, move || {
                let mut wl = Skeleton::scaled(profile, threads, scale);
                if let Some(k) = kind {
                    wl = wl.with_barrier_mutex(k);
                }
                Box::new(wl)
            })
        };
        let base = submit(8, None, Mechanisms::vanilla());
        let pthread = submit(32, None, Mechanisms::vanilla());
        let mutexee = submit(
            32,
            Some(MutexKind::Mutexee { spin_ns }),
            Mechanisms::vanilla(),
        );
        let mcstp = submit(
            32,
            Some(MutexKind::McsTp { spin_ns }),
            Mechanisms::vanilla(),
        );
        let shfl = submit(
            32,
            Some(MutexKind::Shfllock { spin_ns }),
            Mechanisms::vanilla(),
        );
        let opt = submit(32, None, Mechanisms::optimized());
        arms.push((name, base, pthread, mutexee, mcstp, shfl, opt));
    }
    let r = sweep.run();

    let mut t = TextTable::new([
        "benchmark",
        "pthread",
        "mutexee",
        "mcstp",
        "shfllock",
        "optimized",
    ]);
    for (name, base, pthread, mutexee, mcstp, shfl, opt) in arms {
        t.row([
            name.to_string(),
            fmt_x(r[pthread].normalized_to(&r[base])),
            fmt_x(r[mutexee].normalized_to(&r[base])),
            fmt_x(r[mcstp].normalized_to(&r[base])),
            fmt_x(r[shfl].normalized_to(&r[base])),
            fmt_x(r[opt].normalized_to(&r[base])),
        ]);
    }
    t
}
