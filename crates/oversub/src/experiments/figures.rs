//! Drivers for the paper's figures (1–4, 9–15).

use super::{fig09_arms, fmt_s, fmt_x, run_skeleton, ExpOpts};
use crate::config::{MachineSpec, Mechanisms, RunConfig};
use crate::engine::run_labelled;
use oversub_bwd::ExecEnv;
use oversub_hw::AccessPattern;
use oversub_locks::{MutexKind, SpinPolicy};
use oversub_metrics::TextTable;
use oversub_simcore::{SimTime, MICROS, MILLIS};
use oversub_workloads::memcached::Memcached;
use oversub_workloads::micro::{ArrayWalk, ComputeYield, Primitive, PrimitiveStress};
use oversub_workloads::skeletons::{BenchProfile, Skeleton};
use oversub_workloads::Workload;

// ---------------------------------------------------------------------
// Figure 1: the oversubscription survey
// ---------------------------------------------------------------------

/// Figure 1: normalized execution time of all 32 benchmarks with 8T and
/// 32T on 8 cores (vanilla Linux).
pub fn fig01_survey(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new(["benchmark", "group", "8T", "32T(vanilla)", "paper-32T"]);
    for p in BenchProfile::all() {
        let base = run_skeleton(
            p.name,
            8,
            MachineSpec::Paper8Cores,
            Mechanisms::vanilla(),
            opts,
        );
        let over = run_skeleton(
            p.name,
            32,
            MachineSpec::Paper8Cores,
            Mechanisms::vanilla(),
            opts,
        );
        t.row([
            p.name.to_string(),
            format!("{:?}", p.group),
            "1.00".to_string(),
            fmt_x(over.normalized_to(&base)),
            fmt_x(p.paper_fig1_slowdown),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 2: direct cost of context switching
// ---------------------------------------------------------------------

/// Figure 2: execution time of the compute(+atomic) microbenchmark with
/// 1..=8 threads on one core, normalized to one thread.
pub fn fig02_direct_cost(opts: ExpOpts) -> TextTable {
    let total = ((400.0 * opts.scale).max(40.0) as u64) * MILLIS;
    let mut t = TextTable::new(["threads", "pure-compute", "with-atomic"]);
    let run1 = |wl: &mut dyn Workload| {
        let cfg = RunConfig::vanilla(1).with_seed(opts.seed);
        run_labelled(wl, &cfg, "fig2")
    };
    let base_a = run1(&mut ComputeYield::fig2a(1, total)).makespan_ns as f64;
    let base_b = run1(&mut ComputeYield::fig2b(1, total)).makespan_ns as f64;
    for n in 1..=8usize {
        let a = run1(&mut ComputeYield::fig2a(n, total)).makespan_ns as f64;
        let b = run1(&mut ComputeYield::fig2b(n, total)).makespan_ns as f64;
        t.row([n.to_string(), fmt_x(a / base_a), fmt_x(b / base_b)]);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 3: synchronization intervals
// ---------------------------------------------------------------------

/// Figure 3: histogram of the benchmarks' synchronization intervals
/// (100 µs bins; the last bin collects everything above 1 ms).
pub fn fig03_sync_intervals() -> TextTable {
    let mut bins = [0usize; 11];
    for p in BenchProfile::all() {
        let us = p.sync_interval_ns / MICROS;
        let idx = ((us / 100) as usize).min(10);
        bins[idx] += 1;
    }
    let mut t = TextTable::new(["interval(us)", "programs"]);
    for (i, &count) in bins.iter().enumerate() {
        let label = if i == 10 {
            ">1000".to_string()
        } else {
            format!("{}-{}", i * 100, (i + 1) * 100)
        };
        t.row([label, count.to_string()]);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 4: indirect cost of context switching
// ---------------------------------------------------------------------

/// Figure 4: indirect cost per context switch (µs; negative = benefit) of
/// two threads sharing one core vs one thread, across working-set sizes
/// and the four access patterns.
pub fn fig04_indirect_cost(opts: ExpOpts) -> TextTable {
    let sizes: Vec<u64> = (17..=27).map(|s| 1u64 << s).collect(); // 128KB..128MB
    let mut t = TextTable::new(["array", "seq-r", "seq-rmw", "rnd-r", "rnd-rmw"]);
    let passes = ((24.0 * opts.scale).max(4.0)) as u64;
    for &ws in &sizes {
        let mut row = vec![if ws >= (1 << 20) {
            format!("{}MB", ws >> 20)
        } else {
            format!("{}KB", ws >> 10)
        }];
        for pattern in AccessPattern::ALL {
            let run = |threads: usize| {
                let mut wl = ArrayWalk {
                    threads,
                    total_ws: ws,
                    pattern,
                    passes,
                };
                let cfg = RunConfig::vanilla(1).with_seed(opts.seed);
                run_labelled(&mut wl, &cfg, "fig4")
            };
            let serial = run(1);
            let over = run(2);
            let ncs = over.cpus.context_switches.max(1);
            let cost_us =
                (over.makespan_ns as f64 - serial.makespan_ns as f64) / ncs as f64 / 1_000.0;
            row.push(format!("{cost_us:.2}"));
        }
        t.row(row);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 9: virtual blocking on the blocking benchmarks
// ---------------------------------------------------------------------

/// Figure 9: normalized execution time of the 13 blocking benchmarks under
/// {8T vanilla, 32T vanilla, 32T optimized} on 8 cores and on 8
/// hyperthreads of 4 cores.
pub fn fig09_vb_blocking(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new([
        "benchmark",
        "8T(van-8c)",
        "32T(van-8c)",
        "32T(opt-8c)",
        "8T(van-8ht)",
        "32T(van-8ht)",
        "32T(opt-8ht)",
    ]);
    for p in BenchProfile::fig9_set() {
        let (b8, o8, x8) = fig09_arms(p.name, MachineSpec::Paper8Cores, opts);
        let (bh, oh, xh) = fig09_arms(p.name, MachineSpec::Paper8Hyperthreads, opts);
        t.row([
            p.name.to_string(),
            "1.00".into(),
            fmt_x(o8.normalized_to(&b8)),
            fmt_x(x8.normalized_to(&b8)),
            "1.00".into(),
            fmt_x(oh.normalized_to(&bh)),
            fmt_x(xh.normalized_to(&bh)),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 10: VB on the pthreads primitives
// ---------------------------------------------------------------------

fn primitive_speedup(primitive: Primitive, threads: usize, cores: usize, opts: ExpOpts) -> f64 {
    let rounds = ((10_000.0 * opts.scale).max(300.0)) as usize;
    let mk = || PrimitiveStress {
        threads,
        rounds,
        primitive,
        work_ns: 2_000,
    };
    let cfg = |mech: Mechanisms| {
        RunConfig::vanilla(cores)
            .with_machine(MachineSpec::PaperN(cores))
            .with_mech(mech)
            .with_seed(opts.seed)
    };
    let vanilla = run_labelled(&mut mk(), &cfg(Mechanisms::vanilla()), "vanilla");
    let vb = run_labelled(&mut mk(), &cfg(Mechanisms::vb_only()), "vb");
    vanilla.makespan_ns as f64 / vb.makespan_ns.max(1) as f64
}

/// Figure 10(a): speedup of VB over vanilla for mutex / condvar / barrier
/// with 1..=32 threads on a single core.
pub fn fig10a_primitives_threads(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new([
        "threads",
        "pthread_mutex",
        "pthread_cond",
        "pthread_barrier",
    ]);
    for &n in &[1usize, 2, 4, 8, 16, 32] {
        t.row([
            n.to_string(),
            fmt_x(primitive_speedup(Primitive::Mutex, n, 1, opts)),
            fmt_x(primitive_speedup(Primitive::Cond, n, 1, opts)),
            fmt_x(primitive_speedup(Primitive::Barrier, n, 1, opts)),
        ]);
    }
    t
}

/// Figure 10(b): speedup of VB over vanilla with 32 threads on 1..=32
/// cores.
pub fn fig10b_primitives_cores(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new(["cores", "pthread_mutex", "pthread_cond", "pthread_barrier"]);
    for &c in &[1usize, 2, 4, 8, 16, 32] {
        t.row([
            c.to_string(),
            fmt_x(primitive_speedup(Primitive::Mutex, 32, c, opts)),
            fmt_x(primitive_speedup(Primitive::Cond, 32, c, opts)),
            fmt_x(primitive_speedup(Primitive::Barrier, 32, c, opts)),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 11: CPU elasticity
// ---------------------------------------------------------------------

/// Figure 11: execution time (s) of five benchmarks across core counts
/// under {#core-T vanilla, 8T vanilla, 32T vanilla, 32T pinned,
/// 32T optimized}.
pub fn fig11_elasticity(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new([
        "benchmark",
        "cores",
        "#coreT(van)",
        "8T(van)",
        "32T(van)",
        "32T(pinned)",
        "32T(opt)",
    ]);
    for name in ["ep", "facesim", "streamcluster", "ocean", "cg"] {
        for &cores in &[2usize, 4, 8, 16, 32] {
            let m = MachineSpec::PaperN(cores);
            let run = |threads: usize, mech: Mechanisms, pinned: bool| {
                let profile = BenchProfile::by_name(name).unwrap();
                let mut wl = Skeleton::scaled(profile, threads, opts.scale);
                let mut cfg = RunConfig::vanilla(cores)
                    .with_machine(m.clone())
                    .with_mech(mech)
                    .with_seed(opts.seed);
                cfg.pinned = pinned;
                run_labelled(&mut wl, &cfg, name)
            };
            let coret = run(cores, Mechanisms::vanilla(), false);
            let t8 = run(8, Mechanisms::vanilla(), false);
            let t32 = run(32, Mechanisms::vanilla(), false);
            let pinned = run(32, Mechanisms::vanilla(), true);
            let opt = run(32, Mechanisms::optimized(), false);
            t.row([
                name.to_string(),
                cores.to_string(),
                fmt_s(&coret),
                fmt_s(&t8),
                fmt_s(&t32),
                fmt_s(&pinned),
                fmt_s(&opt),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------
// Figure 12: memcached
// ---------------------------------------------------------------------

/// Figure 12: memcached throughput / mean / p95 / p99 under {4T vanilla,
/// 16T vanilla, 16T optimized} on 4, 8, and 16 server cores.
pub fn fig12_memcached(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new([
        "cores",
        "arm",
        "throughput(op/s)",
        "mean(us)",
        "p95(us)",
        "p99(us)",
    ]);
    let duration = SimTime::from_millis(((2_000.0 * opts.scale).max(300.0)) as u64);
    for &cores in &[4usize, 8, 16] {
        // Offered load tracks capacity (~80%), as a closed-loop mutilate
        // client effectively does; a fixed open-loop rate would saturate
        // the small configurations into unbounded queueing.
        let rate = (45_000.0 * cores as f64).min(420_000.0);
        for (label, workers, mech) in [
            ("4T(vanilla)", 4, Mechanisms::vanilla()),
            ("16T(vanilla)", 16, Mechanisms::vanilla()),
            ("16T(optimized)", 16, Mechanisms::optimized()),
        ] {
            let mut wl = Memcached::paper(workers, cores, rate);
            wl.clients = (rate / 70_000.0).ceil() as usize;
            let cpus = wl.total_cpus();
            let cfg = RunConfig::vanilla(cpus)
                .with_mech(mech)
                .with_seed(opts.seed)
                .with_max_time(duration);
            let r = run_labelled(&mut wl, &cfg, label);
            t.row([
                cores.to_string(),
                label.to_string(),
                format!("{:.0}", r.throughput_ops()),
                format!("{:.0}", r.latency.mean() / 1_000.0),
                format!("{}", r.latency.percentile(95.0) / 1_000),
                format!("{}", r.latency.percentile(99.0) / 1_000),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------
// Figure 13: the ten spinlocks
// ---------------------------------------------------------------------

/// Figure 13: execution time (s) of the spinlock stress benchmark for all
/// ten algorithms, in a container or a VM (the VM adds the PLE arm).
pub fn fig13_spinlocks(env: ExecEnv, opts: ExpOpts) -> TextTable {
    use oversub_workloads::micro::SpinlockStress;
    let header: Vec<&str> = match env {
        ExecEnv::Container => vec!["lock", "8T(vanilla)", "32T(vanilla)", "32T(optimized)"],
        ExecEnv::Vm => vec![
            "lock",
            "8T(vanilla)",
            "32T(vanilla)",
            "32T(PLE)",
            "32T(optimized)",
        ],
    };
    let mut t = TextTable::new(header);
    let iters = ((1_600.0 * opts.scale).max(96.0)) as usize;
    for policy in SpinPolicy::all() {
        let run = |threads: usize, mech: Mechanisms| {
            let mut wl = SpinlockStress::fig13(threads, policy, iters);
            let mut cfg = RunConfig::vanilla(8)
                .with_machine(MachineSpec::Paper8Cores)
                .with_mech(mech)
                .with_seed(opts.seed);
            cfg.env = env;
            run_labelled(&mut wl, &cfg, policy.name)
        };
        let base = run(8, Mechanisms::vanilla());
        let over = run(32, Mechanisms::vanilla());
        let opt = run(32, Mechanisms::bwd_only());
        let mut row = vec![policy.name.to_string(), fmt_s(&base), fmt_s(&over)];
        if env == ExecEnv::Vm {
            let ple = run(32, Mechanisms::ple_only());
            row.push(fmt_s(&ple));
        }
        row.push(fmt_s(&opt));
        t.row(row);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 14: user-customized spinning
// ---------------------------------------------------------------------

/// Figure 14: execution time (s) of `lu` and `volrend` with 8/16/32
/// threads on 8 cores, in containers and VMs, under vanilla / PLE /
/// optimized.
pub fn fig14_custom_spin(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new(["benchmark", "env", "threads", "vanilla", "PLE", "optimized"]);
    for name in ["lu", "volrend"] {
        for env in [ExecEnv::Container, ExecEnv::Vm] {
            for &threads in &[8usize, 16, 32] {
                let run = |mech: Mechanisms| {
                    let profile = BenchProfile::by_name(name).unwrap();
                    let mut wl = Skeleton::scaled(profile, threads, opts.scale);
                    let mut cfg = RunConfig::vanilla(8)
                        .with_machine(MachineSpec::Paper8Cores)
                        .with_mech(mech)
                        .with_seed(opts.seed);
                    cfg.env = env;
                    run_labelled(&mut wl, &cfg, name)
                };
                let vanilla = run(Mechanisms::vanilla());
                let ple = if env == ExecEnv::Vm {
                    fmt_s(&run(Mechanisms::ple_only()))
                } else {
                    "n/a".to_string()
                };
                let opt = run(Mechanisms::optimized());
                t.row([
                    name.to_string(),
                    format!("{env:?}"),
                    threads.to_string(),
                    fmt_s(&vanilla),
                    ple,
                    fmt_s(&opt),
                ]);
            }
        }
    }
    t
}

// ---------------------------------------------------------------------
// Figure 15: SHFLLOCK comparison
// ---------------------------------------------------------------------

/// Figure 15: normalized execution time (to the 8T pthread baseline) of
/// five benchmarks at 32T/8c with the synchronization library replaced by
/// each lock design, vs our optimized kernel.
pub fn fig15_shfllock(opts: ExpOpts) -> TextTable {
    let mut t = TextTable::new([
        "benchmark",
        "pthread",
        "mutexee",
        "mcstp",
        "shfllock",
        "optimized",
    ]);
    let spin_ns = 150_000; // spin budget of the spin-then-park designs
    for name in ["freqmine", "streamcluster", "lu_cb", "ocean", "radix"] {
        let profile = BenchProfile::by_name(name).unwrap();
        let run = |threads: usize, kind: Option<MutexKind>, mech: Mechanisms| {
            let mut wl = Skeleton::scaled(profile, threads, opts.scale);
            if let Some(k) = kind {
                wl = wl.with_barrier_mutex(k);
            }
            let cfg = RunConfig::vanilla(8)
                .with_machine(MachineSpec::Paper8Cores)
                .with_mech(mech)
                .with_seed(opts.seed);
            run_labelled(&mut wl, &cfg, name)
        };
        let base = run(8, None, Mechanisms::vanilla());
        let pthread = run(32, None, Mechanisms::vanilla());
        let mutexee = run(
            32,
            Some(MutexKind::Mutexee { spin_ns }),
            Mechanisms::vanilla(),
        );
        let mcstp = run(
            32,
            Some(MutexKind::McsTp { spin_ns }),
            Mechanisms::vanilla(),
        );
        let shfl = run(
            32,
            Some(MutexKind::Shfllock { spin_ns }),
            Mechanisms::vanilla(),
        );
        let opt = run(32, None, Mechanisms::optimized());
        t.row([
            name.to_string(),
            fmt_x(pthread.normalized_to(&base)),
            fmt_x(mutexee.normalized_to(&base)),
            fmt_x(mcstp.normalized_to(&base)),
            fmt_x(shfl.normalized_to(&base)),
            fmt_x(opt.normalized_to(&base)),
        ]);
    }
    t
}
