//! Run configuration: machine shape, mechanisms, and environment.

use crate::faults::{FaultPlan, WatchdogParams};
use crate::mechanism::{Mechanism, MechanismFactory};
use oversub_bwd::{BwdParams, ExecEnv, PleParams};
use oversub_hw::{CacheParams, Topology};
use oversub_ksync::FutexParams;
use oversub_sched::SchedParams;
use oversub_simcore::SimTime;
use oversub_workloads::admission::{AdmissionPolicy, OverloadParams};

/// Which machine the container sees.
#[derive(Clone, Debug)]
pub enum MachineSpec {
    /// `n` cores on one NUMA node, SMT off.
    Flat(usize),
    /// The paper's "8 cores" container: 4 + 4 across two sockets.
    Paper8Cores,
    /// The paper's "8 hyperthreads on 4 cores" container.
    Paper8Hyperthreads,
    /// `n` cores packed like the paper's scaling runs (1 socket up to 18,
    /// then split across 2).
    PaperN(usize),
    /// Explicit NUMA shape: (nodes, cores per node, SMT width).
    Numa(usize, usize, usize),
}

impl MachineSpec {
    /// Materialize the topology.
    pub fn topology(&self) -> Topology {
        match *self {
            MachineSpec::Flat(n) => Topology::flat(n),
            MachineSpec::Paper8Cores => Topology::paper_8_cores(),
            MachineSpec::Paper8Hyperthreads => Topology::paper_8_hyperthreads(),
            MachineSpec::PaperN(n) => Topology::paper_n_cores(n),
            MachineSpec::Numa(nodes, cores, smt) => Topology::numa(nodes, cores, smt),
        }
    }
}

/// The OS mechanisms under study.
#[derive(Clone, Copy, Debug)]
pub struct Mechanisms {
    /// Virtual blocking in futex and epoll.
    pub vb: bool,
    /// VB's waiters-vs-cores auto-disable heuristic.
    pub vb_auto_disable: bool,
    /// Busy-waiting detection.
    pub bwd: bool,
    /// Hardware pause-loop exiting (only effective in `ExecEnv::Vm`).
    pub ple: bool,
    /// Neighbour-aware spin management (extension mechanism: patience
    /// windows sized from observed co-runner interference).
    pub neighbour: bool,
}

impl Mechanisms {
    /// Vanilla Linux: nothing enabled.
    pub fn vanilla() -> Self {
        Mechanisms {
            vb: false,
            vb_auto_disable: true,
            bwd: false,
            ple: false,
            neighbour: false,
        }
    }

    /// The paper's "optimized" configuration: VB + BWD.
    pub fn optimized() -> Self {
        Mechanisms {
            vb: true,
            vb_auto_disable: true,
            bwd: true,
            ple: false,
            neighbour: false,
        }
    }

    /// Vanilla with hardware PLE armed (the Figure 13b/14 baseline).
    pub fn ple_only() -> Self {
        Mechanisms {
            ple: true,
            ..Mechanisms::vanilla()
        }
    }

    /// VB only (blocking-synchronization studies).
    pub fn vb_only() -> Self {
        Mechanisms {
            vb: true,
            vb_auto_disable: true,
            bwd: false,
            ple: false,
            neighbour: false,
        }
    }

    /// BWD only (busy-waiting studies).
    pub fn bwd_only() -> Self {
        Mechanisms {
            vb: false,
            vb_auto_disable: true,
            bwd: true,
            ple: false,
            neighbour: false,
        }
    }

    /// VB + the neighbour-aware spin manager: the A/B arm against
    /// [`Mechanisms::optimized`] — same blocking path, interference-sized
    /// spin patience instead of BWD's timer-window detection.
    pub fn neighbour_aware() -> Self {
        Mechanisms {
            vb: true,
            vb_auto_disable: true,
            bwd: false,
            ple: false,
            neighbour: true,
        }
    }

    /// The neighbour-aware spin manager alone (spin-path studies).
    pub fn neighbour_only() -> Self {
        Mechanisms {
            neighbour: true,
            ..Mechanisms::vanilla()
        }
    }
}

/// A scheduled change of the online core count (CPU elasticity).
#[derive(Clone, Copy, Debug)]
pub struct ElasticEvent {
    /// When the reconfiguration happens.
    pub at: SimTime,
    /// New number of online cores (prefix of the topology's CPUs).
    pub cores: usize,
}

/// Full configuration of one simulation run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Machine shape.
    pub machine: MachineSpec,
    /// Mechanisms enabled.
    pub mech: Mechanisms,
    /// Container or VM (decides whether PLE can fire at all).
    pub env: ExecEnv,
    /// Pin thread `i` to core `i % cores` (the Figure 11 "pinned" arm).
    pub pinned: bool,
    /// RNG seed.
    pub seed: u64,
    /// Hard stop for server workloads (batch workloads end when all tasks
    /// exit).
    pub max_time: Option<SimTime>,
    /// Online-core changes during the run.
    pub elastic: Vec<ElasticEvent>,
    /// Initially online cores (defaults to all).
    pub initial_cores: Option<usize>,
    /// Scheduler tunables.
    pub sched: SchedParams,
    /// Memory-system parameters.
    pub cache: CacheParams,
    /// BWD tunables.
    pub bwd_params: BwdParams,
    /// PLE tunables.
    pub ple_params: PleParams,
    /// Record a scheduling-event trace (see [`crate::trace::TraceLog`]).
    pub trace: bool,
    /// Use the pre-overhaul reference engine internals (classic event
    /// queue, uncached runqueue picks, no resched coalescing). Metrics are
    /// bit-identical either way — this knob exists for the golden
    /// determinism test and before/after throughput comparisons. Can also
    /// be forced with the `OVERSUB_REFERENCE_ENGINE` environment variable.
    pub reference_engine: bool,
    /// Out-of-tree mechanisms, appended to the pipeline after the in-tree
    /// ones selected by [`Mechanisms`]. See [`RunConfig::with_mechanism`].
    pub custom_mechanisms: Vec<MechanismFactory>,
    /// Deterministic fault injection (see [`crate::faults`]). The default
    /// zero-rate plan leaves the run bit-identical to no fault layer.
    pub faults: FaultPlan,
    /// Liveness watchdog; `None` disarms it entirely.
    pub watchdog: Option<WatchdogParams>,
    /// Hard cap on processed events (a step budget for chaos testing);
    /// `None` uses the engine's built-in runaway safety valve.
    pub max_events: Option<u64>,
    /// Overload control plane: per-request deadline, admission policy at
    /// the generator→worker boundary, and the client retry model. The
    /// default (`OverloadParams::disabled()`) keeps every run bit-identical
    /// to a build without the overload layer — workload clients take the
    /// legacy code path and draw no extra randomness.
    pub overload: OverloadParams,
    /// Track lock-acquisition order and wait-for graphs (lockdep) and
    /// surface inversion/deadlock cycles as diagnostics. Observation-only:
    /// every non-diagnostic report byte is identical either way (pinned by
    /// the lockdep golden test). Off by default so clean golden runs carry
    /// no analysis state.
    pub lockdep: bool,
    /// Track happens-before with vector clocks at every sync boundary
    /// (futex wait/wake, lock acquire/release, flag release/acquire,
    /// epoll post) and surface unsynchronized shared-state accesses as
    /// `data-race` diagnostics. Observation-only, same contract as
    /// `lockdep`: every non-diagnostic report byte is identical either
    /// way (pinned by the race golden test). Off by default.
    pub race_detector: bool,
    /// Salt for the event-queue tie-break permutation harness. Zero (the
    /// default) keeps FIFO order on equal-time events — the byte-pinned
    /// production order. Non-zero values permute equal-time pops through
    /// a bijective mix of the insertion sequence number, which is how the
    /// schedule-robustness certifier perturbs schedules; such runs also
    /// disable the resched-coalescing and cadence-lane fast paths (their
    /// correctness proofs assume FIFO ties).
    pub schedule_salt: u64,
    /// Intra-run shard count for the deterministic parallel engine.
    /// `0` (the default) means auto: honour the `OVERSUB_SHARDS`
    /// environment variable, falling back to 1. `1` is the plain
    /// sequential engine; `> 1` shards the per-CPU tick queues across
    /// that many core groups and advances them concurrently under
    /// conservative lookahead windows. The report is byte-identical at
    /// any shard count — sharding only arms on configurations where the
    /// equivalence proof holds (optimized engine, no fault plan, no
    /// schedule salt, no trace/audit env toggles) and silently falls
    /// back to sequential otherwise.
    pub shards: usize,
}

impl RunConfig {
    /// A vanilla run on `cores` flat cores.
    pub fn vanilla(cores: usize) -> Self {
        RunConfig {
            machine: MachineSpec::Flat(cores),
            mech: Mechanisms::vanilla(),
            env: ExecEnv::Container,
            pinned: false,
            seed: 42,
            max_time: None,
            elastic: Vec::new(),
            initial_cores: None,
            sched: SchedParams::default(),
            cache: CacheParams::default(),
            bwd_params: BwdParams::default(),
            ple_params: PleParams::default(),
            trace: false,
            reference_engine: false,
            custom_mechanisms: Vec::new(),
            faults: FaultPlan::default(),
            watchdog: None,
            max_events: None,
            overload: OverloadParams::disabled(),
            lockdep: false,
            race_detector: false,
            schedule_salt: 0,
            shards: 0,
        }
    }

    /// The same machine with the paper's optimized mechanisms.
    pub fn optimized(cores: usize) -> Self {
        RunConfig {
            mech: Mechanisms::optimized(),
            ..RunConfig::vanilla(cores)
        }
    }

    /// Builder-style: set the machine spec.
    pub fn with_machine(mut self, m: MachineSpec) -> Self {
        self.machine = m;
        self
    }

    /// Builder-style: set mechanisms.
    pub fn with_mech(mut self, m: Mechanisms) -> Self {
        self.mech = m;
        self
    }

    /// Builder-style: set the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: cap the virtual run time.
    pub fn with_max_time(mut self, t: SimTime) -> Self {
        self.max_time = Some(t);
        self
    }

    /// Builder-style: run inside a VM (enables PLE detection).
    pub fn in_vm(mut self) -> Self {
        self.env = ExecEnv::Vm;
        self
    }

    /// Builder-style: pin threads round-robin.
    pub fn pinned(mut self) -> Self {
        self.pinned = true;
        self
    }

    /// Builder-style: record a scheduling trace.
    pub fn traced(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Builder-style: run on the reference (pre-overhaul) engine internals.
    pub fn with_reference_engine(mut self, on: bool) -> Self {
        self.reference_engine = on;
        self
    }

    /// Builder-style: set the fault-injection plan.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Builder-style: arm the liveness watchdog.
    pub fn with_watchdog(mut self, wd: WatchdogParams) -> Self {
        self.watchdog = Some(wd);
        self
    }

    /// Builder-style: cap the number of processed events (step budget).
    pub fn with_max_events(mut self, n: u64) -> Self {
        self.max_events = Some(n);
        self
    }

    /// Builder-style: set the overload control plane (deadline, admission
    /// policy, retry model). See [`OverloadParams`].
    pub fn with_overload(mut self, ov: OverloadParams) -> Self {
        self.overload = ov;
        self
    }

    /// Builder-style: enable lockdep (lock-order inversion and deadlock
    /// cycle detection, surfaced as diagnostics).
    pub fn with_lockdep(mut self) -> Self {
        self.lockdep = true;
        self
    }

    /// Builder-style: enable the happens-before race detector
    /// (vector-clock tracking at sync boundaries, `data-race`
    /// diagnostics for unsynchronized shared-state accesses).
    pub fn with_race_detector(mut self) -> Self {
        self.race_detector = true;
        self
    }

    /// Builder-style: set the schedule-permutation salt for the
    /// robustness certifier. `0` is the pinned production order.
    pub fn with_schedule_salt(mut self, salt: u64) -> Self {
        self.schedule_salt = salt;
        self
    }

    /// Builder-style: set the intra-run shard count (`0` = auto via the
    /// `OVERSUB_SHARDS` environment variable, `1` = sequential). See the
    /// [`shards`](Self::shards) field.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Builder-style: register an out-of-tree [`Mechanism`]. The factory
    /// is invoked once per engine construction so every run gets a fresh
    /// instance; registration order is pipeline order (after the in-tree
    /// mechanisms). See `examples/custom_mechanism.rs`.
    pub fn with_mechanism(
        mut self,
        f: impl Fn() -> Box<dyn Mechanism> + Send + Sync + 'static,
    ) -> Self {
        self.custom_mechanisms.push(MechanismFactory::new(f));
        self
    }

    /// Derive the futex-layer parameters from the mechanisms.
    pub fn futex_params(&self) -> FutexParams {
        FutexParams {
            vb_enabled: self.mech.vb,
            vb_auto_disable: self.mech.vb_auto_disable,
            ..FutexParams::default()
        }
    }

    /// Active BWD parameters (enabled flag folded in). Injected sensor
    /// noise auto-arms the adaptive backoff so BWD degrades gracefully
    /// instead of thrashing on flipped classifications; noise-free runs
    /// keep whatever the caller set (default off), so calibration and
    /// false-positive studies are unperturbed.
    pub fn bwd(&self) -> BwdParams {
        BwdParams {
            enabled: self.mech.bwd,
            adaptive_backoff: self.bwd_params.adaptive_backoff
                || self.faults.sensor_noise_prob > 0.0,
            ..self.bwd_params
        }
    }

    /// Active PLE parameters (enabled flag folded in).
    pub fn ple(&self) -> PleParams {
        PleParams {
            enabled: self.mech.ple,
            ..self.ple_params
        }
    }

    /// Sanity-check the configuration before a run.
    ///
    /// Returns `Err` for combinations that cannot produce a meaningful
    /// simulation (the engine refuses to start), and `Ok(warnings)` for
    /// legal-but-suspicious ones — each warning is a human-readable line
    /// the runner prints to stderr.
    pub fn validate(&self) -> Result<Vec<String>, String> {
        let ncpu = self.machine.topology().num_cpus();
        if let Some(ic) = self.initial_cores {
            if ic == 0 {
                return Err("initial_cores must be at least 1".into());
            }
            if ic > ncpu {
                return Err(format!(
                    "initial_cores ({ic}) exceeds the machine's {ncpu} CPUs"
                ));
            }
        }
        if self.mech.bwd && self.bwd().interval_ns == 0 {
            return Err("BWD is enabled with interval_ns = 0 (timer would never advance)".into());
        }
        if self.mech.ple && self.ple().window_ns == 0 {
            return Err("PLE is enabled with window_ns = 0 (exit storm on every spin)".into());
        }
        self.faults.validate()?;
        if let Some(wd) = &self.watchdog {
            wd.validate(self.sched.slice_ns(1))?;
        }
        if self.max_events == Some(0) {
            return Err("max_events must be non-zero (no event would ever run)".into());
        }
        if let Some(retry) = &self.overload.retry {
            if self.overload.deadline_ns == 0 {
                return Err(
                    "overload: retries are configured with deadline_ns = 0 (no timeout \
                     would ever fire, so no retry could ever be attempted)"
                        .into(),
                );
            }
            if retry.budget == 0 {
                return Err(
                    "overload: retry budget is 0 — use `retry: None` to disable retries".into(),
                );
            }
            if retry.budget > 64 {
                return Err(format!(
                    "overload: retry budget {} exceeds the sanity cap of 64 (a storm \
                     amplifier, not a client model)",
                    retry.budget
                ));
            }
        }
        match self.overload.admission {
            AdmissionPolicy::QueueCap(0) => {
                return Err(
                    "overload: QueueCap(0) sheds every request — no work would ever be \
                     admitted"
                        .into(),
                );
            }
            AdmissionPolicy::CoDel {
                target_ns,
                interval_ns,
            } if target_ns == 0 || interval_ns == 0 => {
                return Err(
                    "overload: CoDel target_ns and interval_ns must both be non-zero".into(),
                );
            }
            _ => {}
        }

        let mut warnings = Vec::new();
        if self.faults.enabled() && self.reference_engine {
            warnings.push(
                "fault injection is combined with the golden-determinism reference \
                 engine: the reference exists to prove fault-free byte-identity, so \
                 a chaos run on it proves nothing about the optimized engine"
                    .to_string(),
            );
        }
        if self.shards > 1 && self.reference_engine {
            warnings.push(
                "shards > 1 is combined with the reference engine: sharding only \
                 arms on the optimized engine, so the run will execute sequentially"
                    .to_string(),
            );
        }
        if self.faults.enabled() && self.watchdog.is_none() {
            warnings.push(
                "fault injection is enabled with the watchdog disarmed: lost wakeups \
                 will hang the run until the event cap instead of being rescued"
                    .to_string(),
            );
        }
        if self.mech.ple && self.env == ExecEnv::Container {
            warnings.push(
                "PLE is enabled but env is Container: pause-loop exiting only fires \
                 inside a VM, so it will never trigger"
                    .to_string(),
            );
        }
        for ev in &self.elastic {
            if ev.cores > ncpu {
                warnings.push(format!(
                    "elastic event at {} ns requests {} cores but the machine has {} \
                     (will be clamped)",
                    ev.at.as_nanos(),
                    ev.cores,
                    ncpu
                ));
            }
            if ev.cores == 0 {
                warnings.push(format!(
                    "elastic event at {} ns requests 0 cores (will be clamped to 1)",
                    ev.at.as_nanos()
                ));
            }
        }
        if self.pinned && !self.elastic.is_empty() {
            warnings.push(
                "threads are pinned while the online core count changes: pinned \
                 threads cannot migrate off offlined cores and will stack up on the \
                 surviving ones (this is the paper's Figure 11 'pinned' arm — \
                 intentional there)"
                    .to_string(),
            );
        }
        Ok(warnings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPlan, WatchdogParams};

    #[test]
    fn machine_specs_materialize() {
        assert_eq!(MachineSpec::Flat(8).topology().num_cpus(), 8);
        assert_eq!(MachineSpec::Paper8Cores.topology().num_nodes(), 2);
        assert_eq!(MachineSpec::Paper8Hyperthreads.topology().smt(), 2);
        assert_eq!(MachineSpec::PaperN(32).topology().num_cpus(), 32);
        assert_eq!(MachineSpec::Numa(2, 3, 2).topology().num_cpus(), 12);
    }

    #[test]
    fn mechanism_presets() {
        let v = Mechanisms::vanilla();
        assert!(!v.vb && !v.bwd && !v.ple);
        let o = Mechanisms::optimized();
        assert!(o.vb && o.bwd && !o.ple);
        let p = Mechanisms::ple_only();
        assert!(p.ple && !p.vb && !p.bwd);
    }

    #[test]
    fn futex_params_follow_mechanisms() {
        let cfg = RunConfig::optimized(8);
        assert!(cfg.futex_params().vb_enabled);
        assert!(cfg.bwd().enabled);
        assert!(!cfg.ple().enabled);
        let cfg = RunConfig::vanilla(8);
        assert!(!cfg.futex_params().vb_enabled);
    }

    #[test]
    fn validate_accepts_the_paper_configs() {
        assert_eq!(RunConfig::vanilla(8).validate(), Ok(Vec::new()));
        assert_eq!(RunConfig::optimized(8).validate(), Ok(Vec::new()));
        assert_eq!(
            RunConfig::vanilla(4)
                .with_mech(Mechanisms::ple_only())
                .in_vm()
                .validate(),
            Ok(Vec::new())
        );
    }

    #[test]
    fn validate_rejects_broken_configs() {
        let mut cfg = RunConfig::vanilla(4);
        cfg.initial_cores = Some(0);
        assert!(cfg.validate().is_err());

        let mut cfg = RunConfig::vanilla(4);
        cfg.initial_cores = Some(9);
        assert!(cfg.validate().unwrap_err().contains("exceeds"));

        let mut cfg = RunConfig::optimized(4);
        cfg.bwd_params.interval_ns = 0;
        assert!(cfg.validate().is_err());

        let mut cfg = RunConfig::vanilla(4).with_mech(Mechanisms::ple_only());
        cfg.ple_params.window_ns = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_warns_on_suspicious_configs() {
        // PLE in a container never fires.
        let w = RunConfig::vanilla(4)
            .with_mech(Mechanisms::ple_only())
            .validate()
            .unwrap();
        assert_eq!(w.len(), 1);
        assert!(w[0].contains("Container"));

        // Elastic targets beyond the machine, or zero.
        let mut cfg = RunConfig::vanilla(4);
        cfg.elastic.push(ElasticEvent {
            at: SimTime::from_millis(1),
            cores: 16,
        });
        cfg.elastic.push(ElasticEvent {
            at: SimTime::from_millis(2),
            cores: 0,
        });
        let w = cfg.validate().unwrap();
        assert_eq!(w.len(), 2);

        // Pinned + elastic stacks threads on surviving cores.
        let mut cfg = RunConfig::vanilla(4).pinned();
        cfg.elastic.push(ElasticEvent {
            at: SimTime::from_millis(1),
            cores: 2,
        });
        let w = cfg.validate().unwrap();
        assert_eq!(w.len(), 1);
        assert!(w[0].contains("pinned"));
    }

    #[test]
    fn validate_rejects_impossible_fault_configs() {
        let cfg = RunConfig::vanilla(4).with_faults(FaultPlan::default().lost_wakeups(1.5));
        assert!(cfg.validate().unwrap_err().contains("[0, 1]"));

        // Watchdog park timeout shorter than a scheduler slice.
        let wd = WatchdogParams {
            park_timeout_ns: 1_000,
            ..WatchdogParams::default()
        };
        let cfg = RunConfig::vanilla(4).with_watchdog(wd);
        assert!(cfg.validate().unwrap_err().contains("slice"));

        // Starvation bound of zero.
        let wd = WatchdogParams {
            starvation_bound_ns: 0,
            ..WatchdogParams::default()
        };
        let cfg = RunConfig::vanilla(4).with_watchdog(wd);
        assert!(cfg.validate().is_err());

        let cfg = RunConfig::vanilla(4).with_max_events(0);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_warns_on_faults_with_reference_engine() {
        let cfg = RunConfig::vanilla(4)
            .with_faults(FaultPlan::default().lost_wakeups(0.1))
            .with_watchdog(WatchdogParams::default())
            .with_reference_engine(true);
        let w = cfg.validate().unwrap();
        assert_eq!(w.len(), 1);
        assert!(w[0].contains("reference"));

        // Faults without a watchdog also warn.
        let cfg = RunConfig::vanilla(4).with_faults(FaultPlan::default().lost_wakeups(0.1));
        let w = cfg.validate().unwrap();
        assert_eq!(w.len(), 1);
        assert!(w[0].contains("watchdog"));
    }

    #[test]
    fn validate_rejects_broken_overload_configs() {
        use oversub_workloads::admission::RetryPolicy;

        // Retries without a deadline: no timeout can ever fire.
        let cfg = RunConfig::vanilla(4)
            .with_overload(OverloadParams::disabled().with_retry(RetryPolicy::default()));
        assert!(cfg.validate().unwrap_err().contains("deadline_ns = 0"));

        // Zero retry budget.
        let ov = OverloadParams::disabled()
            .with_deadline_ns(1_000_000)
            .with_retry(RetryPolicy {
                budget: 0,
                ..RetryPolicy::default()
            });
        let cfg = RunConfig::vanilla(4).with_overload(ov);
        assert!(cfg.validate().unwrap_err().contains("budget"));

        // Retry budget beyond the sanity cap.
        let ov = OverloadParams::disabled()
            .with_deadline_ns(1_000_000)
            .with_retry(RetryPolicy {
                budget: 65,
                ..RetryPolicy::default()
            });
        let cfg = RunConfig::vanilla(4).with_overload(ov);
        assert!(cfg.validate().unwrap_err().contains("64"));

        // Shed-everything queue cap.
        let cfg = RunConfig::vanilla(4)
            .with_overload(OverloadParams::disabled().with_admission(AdmissionPolicy::QueueCap(0)));
        assert!(cfg.validate().unwrap_err().contains("QueueCap(0)"));

        // Degenerate CoDel windows.
        let cfg = RunConfig::vanilla(4).with_overload(OverloadParams::disabled().with_admission(
            AdmissionPolicy::CoDel {
                target_ns: 0,
                interval_ns: 500_000,
            },
        ));
        assert!(cfg.validate().unwrap_err().contains("CoDel"));

        // A sane overload config passes clean.
        let ov = OverloadParams::disabled()
            .with_deadline_ns(3_000_000)
            .with_admission(AdmissionPolicy::CoDel {
                target_ns: 300_000,
                interval_ns: 500_000,
            })
            .with_retry(RetryPolicy::default());
        assert_eq!(
            RunConfig::vanilla(4).with_overload(ov).validate(),
            Ok(Vec::new())
        );
    }

    #[test]
    fn sensor_noise_auto_arms_bwd_backoff() {
        let cfg = RunConfig::optimized(4);
        assert!(!cfg.bwd().adaptive_backoff);
        let noisy = cfg.with_faults(FaultPlan::default().sensor_noise(0.2));
        assert!(noisy.bwd().adaptive_backoff);
    }

    #[test]
    fn builders_compose() {
        let cfg = RunConfig::vanilla(4)
            .with_seed(7)
            .in_vm()
            .pinned()
            .with_max_time(SimTime::from_secs(1));
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.env, ExecEnv::Vm);
        assert!(cfg.pinned);
        assert_eq!(cfg.max_time, Some(SimTime::from_secs(1)));
    }
}
