//! Action execution: drives a task's program through its actions,
//! interpreting synchronization effects against the futex/epoll substrate
//! and the lock state machines.
//!
//! The blocking wrappers and cross-CPU grant paths these handlers lean on
//! live in `engine::blocking`; segment arming lives in `engine::spin`.

use crate::engine::{Cont, Engine, Event, Resume, RunKind};
use crate::race::Chan;
use oversub_hw::CpuId;
use oversub_locks::{BarrierEffect, LockKey, MutexAcquire, MutexRelease, SemEffect, SpinEffect};
use oversub_simcore::SimTime;
use oversub_task::{Action, LockId, ProgCtx, SpinSig, SyncOp, TaskId};

/// Flow control for the inner action loop.
enum Flow {
    /// Keep processing actions at the (possibly advanced) time.
    Continue(SimTime),
    /// The task left the CPU or started a timed segment; stop the loop.
    Break,
}

impl Engine {
    /// NUMA node index of a CPU.
    fn node_of(&self, cpu: usize) -> usize {
        self.sched.topo.node_of(CpuId(cpu)).0
    }

    /// Process the current task on `cpu` starting at `t` until it blocks,
    /// yields, exits, or begins a timed segment.
    ///
    /// Invariant on entry: `accounted_until == t` for this CPU.
    pub(crate) fn advance_task(&mut self, cpu: usize, mut t: SimTime) {
        loop {
            let Some(tid) = self.sched.cpus[cpu].current else {
                return;
            };
            let cont = self.conts[tid.0];
            let flow = match cont {
                Cont::Ready => {
                    let action = {
                        let mut ctx = ProgCtx {
                            task: tid,
                            now: t,
                            rng: &mut self.rngs[tid.0],
                        };
                        self.tasks.programs[tid.0].next(&mut ctx)
                    };
                    self.start_action(cpu, tid, action, t)
                }
                Cont::Work { .. } => {
                    self.begin_work_segment(cpu, tid, t);
                    Flow::Break
                }
                Cont::SpinLock {
                    lock,
                    is_mutex,
                    sig,
                    budget_left,
                } => self.resume_lock_spin(cpu, tid, lock, is_mutex, sig, budget_left, t),
                Cont::SpinFlag {
                    flag,
                    while_eq,
                    sig,
                } => {
                    if self.sync.flag_get(flag) != while_eq {
                        self.rc_flag_load(tid, flag, t);
                        self.conts[tid.0] = Cont::Ready;
                        Flow::Continue(t)
                    } else {
                        self.begin_spin_segment(cpu, tid, sig, None, t);
                        Flow::Break
                    }
                }
                Cont::Blocked(resume) => self.handle_resume(cpu, tid, resume, t),
                Cont::Done => return,
            };
            match flow {
                Flow::Continue(nt) => t = nt,
                Flow::Break => return,
            }
        }
    }

    // -----------------------------------------------------------------
    // Resumption after kernel blocking
    // -----------------------------------------------------------------

    fn handle_resume(&mut self, cpu: usize, tid: TaskId, resume: Resume, t: SimTime) -> Flow {
        match resume {
            Resume::Simple | Resume::Io => {
                self.conts[tid.0] = Cont::Ready;
                Flow::Continue(t)
            }
            Resume::SemAcquired(s) => {
                // The post handed this waiter its token along with the wake.
                self.ld_acquired(tid, LockKey::sem(s.0), t);
                self.conts[tid.0] = Cont::Ready;
                Flow::Continue(t)
            }
            Resume::EpollReady(ep) => {
                self.epoll.take_pending(ep);
                self.conts[tid.0] = Cont::Ready;
                Flow::Continue(t)
            }
            Resume::MutexRetry(l) | Resume::CondReacquire(l) => {
                self.sync.mutexes[l.0].note_wake_retry(tid);
                self.acquire_mutex(cpu, tid, l, t)
            }
        }
    }

    // -----------------------------------------------------------------
    // Actions
    // -----------------------------------------------------------------

    fn start_action(&mut self, cpu: usize, tid: TaskId, action: Action, t: SimTime) -> Flow {
        match action {
            Action::Compute { ns } => {
                self.conts[tid.0] = Cont::Work {
                    action,
                    left_ns: ns,
                };
                self.begin_work_segment(cpu, tid, t);
                Flow::Break
            }
            Action::MemTraversal {
                pattern,
                ws_bytes,
                elems,
            } => {
                let out = self.mem.traversal(pattern, ws_bytes, elems);
                self.tasks.footprint_bytes[tid.0] = ws_bytes;
                self.tasks.random_access[tid.0] = !pattern.is_sequential();
                self.conts[tid.0] = Cont::Work {
                    action,
                    left_ns: out.ns.max(1),
                };
                self.begin_work_segment(cpu, tid, t);
                Flow::Break
            }
            Action::TightLoop { ns, sig } => {
                self.conts[tid.0] = Cont::Work {
                    action,
                    left_ns: ns,
                };
                self.begin_work_segment_kind(cpu, tid, t, RunKind::TightLoop(sig));
                Flow::Break
            }
            Action::AtomicRmw { line: _ } => {
                // Cost grows with the number of cores actively hitting the
                // line — bounded by active cores, not thread count (§2.3).
                let busy = self.sched.active_count().max(1);
                let cost = 20 + 35 * (busy as u64 - 1).min(16);
                self.charge_useful(cpu, cost);
                Flow::Continue(t + cost)
            }
            Action::Yield => {
                self.sched.stop_current(
                    &mut self.tasks,
                    CpuId(cpu),
                    t,
                    oversub_sched::StopReason::Yielded,
                );
                self.stint_epoch[cpu] += 1;
                self.seg_epoch[cpu] += 1;
                self.spin_exit_at[cpu] = None;
                self.sched_resched(t, cpu);
                Flow::Break
            }
            Action::IoWait { ns } => {
                let syscall = self.sched.params.syscall_entry_ns;
                self.charge_kernel(cpu, syscall);
                self.sched.stop_current(
                    &mut self.tasks,
                    CpuId(cpu),
                    t + syscall,
                    oversub_sched::StopReason::Sleep,
                );
                self.conts[tid.0] = Cont::Blocked(Resume::Io);
                self.stint_epoch[cpu] += 1;
                self.seg_epoch[cpu] += 1;
                self.spin_exit_at[cpu] = None;
                self.queue
                    .schedule_nocancel(t + syscall + ns, Event::IoDone(tid.0));
                self.sched_resched(t + syscall, cpu);
                Flow::Break
            }
            Action::Exit => {
                self.sched.stop_current(
                    &mut self.tasks,
                    CpuId(cpu),
                    t,
                    oversub_sched::StopReason::Exit,
                );
                self.conts[tid.0] = Cont::Done;
                self.live -= 1;
                self.last_exit = self.last_exit.max_of(t);
                self.stint_epoch[cpu] += 1;
                self.seg_epoch[cpu] += 1;
                self.spin_exit_at[cpu] = None;
                self.sched_resched(t, cpu);
                Flow::Break
            }
            Action::Sync(op) => self.handle_sync(cpu, tid, op, t),
        }
    }

    fn handle_sync(&mut self, cpu: usize, tid: TaskId, op: SyncOp, t: SimTime) -> Flow {
        match op {
            SyncOp::MutexLock(l) => self.acquire_mutex(cpu, tid, l, t),
            SyncOp::MutexUnlock(l) => {
                let node = self.node_of(cpu);
                self.ld_release(tid, LockKey::mutex(l.0));
                let (cost, rel) = self.sync.mutexes[l.0].release(tid, node);
                self.charge_useful(cpu, cost);
                let mut t2 = t + cost;
                match rel {
                    MutexRelease::None => {}
                    MutexRelease::GrantSpinner(w) => self.deliver_grant(w, true, l, t2),
                    MutexRelease::WakeParked { futex } => {
                        t2 = t2 + self.do_futex_wake(cpu, futex, 1, t2);
                    }
                }
                Flow::Continue(t2)
            }
            SyncOp::BarrierWait(b) => match self.sync.barriers[b.0].arrive() {
                BarrierEffect::Wait { futex } => {
                    self.do_futex_wait(cpu, tid, futex, Resume::Simple, t);
                    Flow::Break
                }
                BarrierEffect::ReleaseAll { futex, wake_n } => {
                    let cost = self.do_futex_wake(cpu, futex, wake_n, t);
                    // The releasing arriver also happens-after every
                    // earlier arriver (they published into the channel
                    // before parking).
                    self.rc_acquire_chan(tid, Chan::Futex(futex.0));
                    Flow::Continue(t + cost)
                }
            },
            SyncOp::CondWait { cond, mutex } => {
                // Atomically (in engine terms) unlock the mutex and sleep.
                let node = self.node_of(cpu);
                self.ld_release(tid, LockKey::mutex(mutex.0));
                let (cost, rel) = self.sync.mutexes[mutex.0].release(tid, node);
                self.charge_useful(cpu, cost);
                let mut t2 = t + cost;
                match rel {
                    MutexRelease::None => {}
                    MutexRelease::GrantSpinner(w) => self.deliver_grant(w, true, mutex, t2),
                    MutexRelease::WakeParked { futex } => {
                        t2 = t2 + self.do_futex_wake(cpu, futex, 1, t2);
                    }
                }
                let key = self.sync.condvars[cond.0].wait();
                self.do_futex_wait(cpu, tid, key, Resume::CondReacquire(mutex), t2);
                Flow::Break
            }
            SyncOp::CondSignal(c) => {
                let (key, n) = self.sync.condvars[c.0].signal();
                let cost = if n > 0 {
                    self.do_futex_wake(cpu, key, n, t)
                } else {
                    0
                };
                Flow::Continue(t + cost)
            }
            SyncOp::CondBroadcast(c) => {
                let (key, n) = self.sync.condvars[c.0].broadcast();
                let cost = if n > 0 {
                    self.do_futex_wake(cpu, key, n, t)
                } else {
                    0
                };
                Flow::Continue(t + cost)
            }
            SyncOp::SemWait(s) => {
                self.ld_attempt(tid, LockKey::sem(s.0), t);
                match self.sync.sems[s.0].wait() {
                    SemEffect::Acquired => {
                        self.ld_acquired(tid, LockKey::sem(s.0), t);
                        self.charge_useful(cpu, 20);
                        Flow::Continue(t + 20)
                    }
                    SemEffect::Wait { futex } => {
                        self.ld_wait(tid, LockKey::sem(s.0), t);
                        self.do_futex_wait(cpu, tid, futex, Resume::SemAcquired(s), t);
                        Flow::Break
                    }
                }
            }
            SyncOp::SemPost(s) => {
                self.ld_release(tid, LockKey::sem(s.0));
                let wake = self.sync.sems[s.0].post();
                self.charge_useful(cpu, 20);
                let mut t2 = t + 20;
                if let Some((key, n)) = wake {
                    t2 = t2 + self.do_futex_wake(cpu, key, n, t2);
                }
                Flow::Continue(t2)
            }
            SyncOp::SpinAcquire(l) => {
                let node = self.node_of(cpu);
                self.ld_attempt(tid, LockKey::spin(l.0), t);
                match self.sync.spinlocks[l.0].acquire(tid, node) {
                    SpinEffect::Acquired { cost_ns } => {
                        self.ld_acquired(tid, LockKey::spin(l.0), t);
                        self.charge_useful(cpu, cost_ns);
                        Flow::Continue(t + cost_ns)
                    }
                    SpinEffect::MustSpin { sig } => {
                        self.ld_wait(tid, LockKey::spin(l.0), t);
                        self.spin_episodes += 1;
                        self.conts[tid.0] = Cont::SpinLock {
                            lock: l,
                            is_mutex: false,
                            sig,
                            budget_left: None,
                        };
                        self.begin_spin_segment(cpu, tid, sig, None, t);
                        Flow::Break
                    }
                }
            }
            SyncOp::SpinRelease(l) => {
                let node = self.node_of(cpu);
                self.ld_release(tid, LockKey::spin(l.0));
                let (cost, granted) = self.sync.spinlocks[l.0].release(tid, node);
                self.charge_useful(cpu, cost);
                let t2 = t + cost;
                match granted {
                    Some(w) => self.deliver_grant(w, false, l, t2),
                    None => self.barge_check(l, t2),
                }
                Flow::Continue(t2)
            }
            SyncOp::FlagSpinWhileEq {
                flag,
                while_eq,
                sig,
            } => {
                self.rc_flag_load(tid, flag, t);
                if self.sync.flag_spin_begin(flag, tid, while_eq) {
                    Flow::Continue(t)
                } else {
                    self.spin_episodes += 1;
                    self.conts[tid.0] = Cont::SpinFlag {
                        flag,
                        while_eq,
                        sig,
                    };
                    self.begin_spin_segment(cpu, tid, sig, None, t);
                    Flow::Break
                }
            }
            SyncOp::FlagSet { flag, value } => {
                self.rc_flag_store(tid, flag, value, t);
                let released = self.sync.flag_set(flag, value);
                self.charge_useful(cpu, 15);
                let t2 = t + 15;
                for w in released {
                    // The released spinner's satisfied load: an acquire
                    // on a sync flag, a race-checked read on a plain one.
                    self.rc_flag_load(w, flag, t2);
                    self.release_flag_spinner(w, t2);
                }
                Flow::Continue(t2)
            }
            SyncOp::EpollWait(ep) => {
                use oversub_ksync::EpollWaitResult;
                match self.epoll.epoll_wait(
                    &mut self.sched,
                    &mut self.tasks,
                    tid,
                    ep,
                    CpuId(cpu),
                    t,
                ) {
                    EpollWaitResult::Ready { events: _, cost_ns } => {
                        self.rc_acquire_chan(tid, Chan::Epoll(ep.0));
                        self.charge_kernel(cpu, cost_ns);
                        Flow::Continue(t + cost_ns)
                    }
                    EpollWaitResult::Blocked(out) => {
                        self.rc_release_chan(tid, Chan::Epoll(ep.0));
                        if !self.mechs.is_empty() {
                            self.mechs.on_block(cpu, tid, out.mode);
                        }
                        self.charge_kernel(cpu, out.cost_ns);
                        self.conts[tid.0] = Cont::Blocked(Resume::EpollReady(ep));
                        if out.mode == oversub_ksync::WaitMode::Virtual {
                            if let Some(s) = self.vb_park_since.get_mut(tid.0) {
                                *s = Some(t);
                            }
                        }
                        self.stint_epoch[cpu] += 1;
                        self.seg_epoch[cpu] += 1;
                        self.spin_exit_at[cpu] = None;
                        self.sched_resched(t + out.cost_ns, cpu);
                        Flow::Break
                    }
                }
            }
            SyncOp::EpollPost(ep, n) => {
                let report =
                    self.epoll
                        .epoll_post(&mut self.sched, &mut self.tasks, ep, n, CpuId(cpu), t);
                self.rc_epoll_post(tid, ep, &report.woken);
                self.charge_kernel(cpu, report.waker_cost_ns);
                let done = t + report.waker_cost_ns;
                self.post_wake_events(&report.woken, done);
                Flow::Continue(done)
            }
        }
    }

    // -----------------------------------------------------------------
    // Mutexes
    // -----------------------------------------------------------------

    fn acquire_mutex(&mut self, cpu: usize, tid: TaskId, l: LockId, t: SimTime) -> Flow {
        let node = self.node_of(cpu);
        self.ld_attempt(tid, LockKey::mutex(l.0), t);
        match self.sync.mutexes[l.0].acquire(tid, node) {
            MutexAcquire::Acquired { cost_ns } => {
                self.ld_acquired(tid, LockKey::mutex(l.0), t);
                self.charge_useful(cpu, cost_ns);
                self.conts[tid.0] = Cont::Ready;
                Flow::Continue(t + cost_ns)
            }
            MutexAcquire::Park { futex } => {
                self.ld_wait(tid, LockKey::mutex(l.0), t);
                self.do_futex_wait(cpu, tid, futex, Resume::MutexRetry(l), t);
                Flow::Break
            }
            MutexAcquire::SpinThenPark {
                sig,
                spin_ns,
                futex: _,
            } => {
                self.ld_wait(tid, LockKey::mutex(l.0), t);
                self.spin_episodes += 1;
                self.conts[tid.0] = Cont::SpinLock {
                    lock: l,
                    is_mutex: true,
                    sig,
                    budget_left: Some(spin_ns),
                };
                self.begin_spin_segment(cpu, tid, sig, Some(spin_ns), t);
                Flow::Break
            }
        }
    }

    /// A scheduled task resumes a lock spin: claim if possible, else keep
    /// spinning.
    #[allow(clippy::too_many_arguments)]
    fn resume_lock_spin(
        &mut self,
        cpu: usize,
        tid: TaskId,
        lock: LockId,
        is_mutex: bool,
        sig: SpinSig,
        budget_left: Option<u64>,
        t: SimTime,
    ) -> Flow {
        let claimed = if is_mutex {
            self.sync.mutexes[lock.0].try_claim(tid)
        } else {
            self.sync.spinlocks[lock.0].try_claim(tid)
        };
        if let Some(cost) = claimed {
            let key = if is_mutex {
                LockKey::mutex(lock.0)
            } else {
                LockKey::spin(lock.0)
            };
            self.ld_acquired(tid, key, t);
            self.charge_useful(cpu, cost);
            self.conts[tid.0] = Cont::Ready;
            return Flow::Continue(t + cost);
        }
        if budget_left == Some(0) {
            self.park_spinner(cpu, tid, t);
            return Flow::Break;
        }
        self.begin_spin_segment(cpu, tid, sig, budget_left, t);
        Flow::Break
    }
}
