//! Action execution: drives a task's program through its actions,
//! interpreting synchronization effects against the futex/epoll substrate
//! and the lock state machines.

use crate::engine::{Cont, Engine, Event, Resume, RunKind, SegEventKind};
use crate::trace::TraceKind;
use oversub_hw::CpuId;
use oversub_locks::{BarrierEffect, MutexAcquire, MutexRelease, SemEffect, SpinEffect};
use oversub_simcore::SimTime;
use oversub_task::{Action, FutexKey, LockId, ProgCtx, SpinSig, SyncOp, TaskId, TaskState};

/// Flow control for the inner action loop.
enum Flow {
    /// Keep processing actions at the (possibly advanced) time.
    Continue(SimTime),
    /// The task left the CPU or started a timed segment; stop the loop.
    Break,
}

impl Engine {
    /// NUMA node index of a CPU.
    fn node_of(&self, cpu: usize) -> usize {
        self.sched.topo.node_of(CpuId(cpu)).0
    }

    /// Process the current task on `cpu` starting at `t` until it blocks,
    /// yields, exits, or begins a timed segment.
    ///
    /// Invariant on entry: `accounted_until == t` for this CPU.
    pub(crate) fn advance_task(&mut self, cpu: usize, mut t: SimTime) {
        loop {
            let Some(tid) = self.sched.cpus[cpu].current else {
                return;
            };
            let cont = self.conts[tid.0];
            let flow = match cont {
                Cont::Ready => {
                    let action = {
                        let mut ctx = ProgCtx {
                            task: tid,
                            now: t,
                            rng: &mut self.rngs[tid.0],
                        };
                        self.tasks[tid.0].program.next(&mut ctx)
                    };
                    self.start_action(cpu, tid, action, t)
                }
                Cont::Work { .. } => {
                    self.begin_work_segment(cpu, tid, t);
                    Flow::Break
                }
                Cont::SpinLock {
                    lock,
                    is_mutex,
                    sig,
                    budget_left,
                } => self.resume_lock_spin(cpu, tid, lock, is_mutex, sig, budget_left, t),
                Cont::SpinFlag {
                    flag,
                    while_eq,
                    sig,
                } => {
                    if self.sync.flag_get(flag) != while_eq {
                        self.conts[tid.0] = Cont::Ready;
                        Flow::Continue(t)
                    } else {
                        self.begin_spin_segment(cpu, tid, sig, None, t);
                        Flow::Break
                    }
                }
                Cont::Blocked(resume) => self.handle_resume(cpu, tid, resume, t),
                Cont::Done => return,
            };
            match flow {
                Flow::Continue(nt) => t = nt,
                Flow::Break => return,
            }
        }
    }

    // -----------------------------------------------------------------
    // Resumption after kernel blocking
    // -----------------------------------------------------------------

    fn handle_resume(&mut self, cpu: usize, tid: TaskId, resume: Resume, t: SimTime) -> Flow {
        match resume {
            Resume::Simple | Resume::Io => {
                self.conts[tid.0] = Cont::Ready;
                Flow::Continue(t)
            }
            Resume::EpollReady(ep) => {
                self.epoll.take_pending(ep);
                self.conts[tid.0] = Cont::Ready;
                Flow::Continue(t)
            }
            Resume::MutexRetry(l) | Resume::CondReacquire(l) => {
                self.sync.mutexes[l.0].note_wake_retry(tid);
                self.acquire_mutex(cpu, tid, l, t)
            }
        }
    }

    // -----------------------------------------------------------------
    // Actions
    // -----------------------------------------------------------------

    fn start_action(&mut self, cpu: usize, tid: TaskId, action: Action, t: SimTime) -> Flow {
        match action {
            Action::Compute { ns } => {
                self.conts[tid.0] = Cont::Work {
                    action,
                    left_ns: ns,
                };
                self.begin_work_segment(cpu, tid, t);
                Flow::Break
            }
            Action::MemTraversal {
                pattern,
                ws_bytes,
                elems,
            } => {
                let out = self.mem.traversal(pattern, ws_bytes, elems);
                self.tasks[tid.0].footprint_bytes = ws_bytes;
                self.tasks[tid.0].random_access = !pattern.is_sequential();
                self.conts[tid.0] = Cont::Work {
                    action,
                    left_ns: out.ns.max(1),
                };
                self.begin_work_segment(cpu, tid, t);
                Flow::Break
            }
            Action::TightLoop { ns, sig } => {
                self.conts[tid.0] = Cont::Work {
                    action,
                    left_ns: ns,
                };
                self.begin_work_segment_kind(cpu, tid, t, RunKind::TightLoop(sig));
                Flow::Break
            }
            Action::AtomicRmw { line: _ } => {
                // Cost grows with the number of cores actively hitting the
                // line — bounded by active cores, not thread count (§2.3).
                let busy = self
                    .sched
                    .cpus
                    .iter()
                    .filter(|c| c.current.is_some())
                    .count()
                    .max(1);
                let cost = 20 + 35 * (busy as u64 - 1).min(16);
                self.charge_useful(cpu, cost);
                Flow::Continue(t + cost)
            }
            Action::Yield => {
                self.sched.stop_current(
                    &mut self.tasks,
                    CpuId(cpu),
                    t,
                    oversub_sched::StopReason::Yielded,
                );
                self.stint_epoch[cpu] += 1;
                self.seg_epoch[cpu] += 1;
                self.ple_exit_at[cpu] = None;
                self.sched_resched(t, cpu);
                Flow::Break
            }
            Action::IoWait { ns } => {
                let syscall = self.sched.params.syscall_entry_ns;
                self.charge_kernel(cpu, syscall);
                self.sched.stop_current(
                    &mut self.tasks,
                    CpuId(cpu),
                    t + syscall,
                    oversub_sched::StopReason::Sleep,
                );
                self.conts[tid.0] = Cont::Blocked(Resume::Io);
                self.stint_epoch[cpu] += 1;
                self.seg_epoch[cpu] += 1;
                self.ple_exit_at[cpu] = None;
                self.queue
                    .schedule_nocancel(t + syscall + ns, Event::IoDone(tid.0));
                self.sched_resched(t + syscall, cpu);
                Flow::Break
            }
            Action::Exit => {
                self.sched.stop_current(
                    &mut self.tasks,
                    CpuId(cpu),
                    t,
                    oversub_sched::StopReason::Exit,
                );
                self.conts[tid.0] = Cont::Done;
                self.live -= 1;
                self.last_exit = self.last_exit.max_of(t);
                self.stint_epoch[cpu] += 1;
                self.seg_epoch[cpu] += 1;
                self.ple_exit_at[cpu] = None;
                self.sched_resched(t, cpu);
                Flow::Break
            }
            Action::Sync(op) => self.handle_sync(cpu, tid, op, t),
        }
    }

    fn handle_sync(&mut self, cpu: usize, tid: TaskId, op: SyncOp, t: SimTime) -> Flow {
        match op {
            SyncOp::MutexLock(l) => self.acquire_mutex(cpu, tid, l, t),
            SyncOp::MutexUnlock(l) => {
                let node = self.node_of(cpu);
                let (cost, rel) = self.sync.mutexes[l.0].release(tid, node);
                self.charge_useful(cpu, cost);
                let mut t2 = t + cost;
                match rel {
                    MutexRelease::None => {}
                    MutexRelease::GrantSpinner(w) => self.deliver_grant(w, true, l, t2),
                    MutexRelease::WakeParked { futex } => {
                        t2 = t2 + self.do_futex_wake(cpu, futex, 1, t2);
                    }
                }
                Flow::Continue(t2)
            }
            SyncOp::BarrierWait(b) => match self.sync.barriers[b.0].arrive() {
                BarrierEffect::Wait { futex } => {
                    self.do_futex_wait(cpu, tid, futex, Resume::Simple, t);
                    Flow::Break
                }
                BarrierEffect::ReleaseAll { futex, wake_n } => {
                    let cost = self.do_futex_wake(cpu, futex, wake_n, t);
                    Flow::Continue(t + cost)
                }
            },
            SyncOp::CondWait { cond, mutex } => {
                // Atomically (in engine terms) unlock the mutex and sleep.
                let node = self.node_of(cpu);
                let (cost, rel) = self.sync.mutexes[mutex.0].release(tid, node);
                self.charge_useful(cpu, cost);
                let mut t2 = t + cost;
                match rel {
                    MutexRelease::None => {}
                    MutexRelease::GrantSpinner(w) => self.deliver_grant(w, true, mutex, t2),
                    MutexRelease::WakeParked { futex } => {
                        t2 = t2 + self.do_futex_wake(cpu, futex, 1, t2);
                    }
                }
                let key = self.sync.condvars[cond.0].wait();
                self.do_futex_wait(cpu, tid, key, Resume::CondReacquire(mutex), t2);
                Flow::Break
            }
            SyncOp::CondSignal(c) => {
                let (key, n) = self.sync.condvars[c.0].signal();
                let cost = if n > 0 {
                    self.do_futex_wake(cpu, key, n, t)
                } else {
                    0
                };
                Flow::Continue(t + cost)
            }
            SyncOp::CondBroadcast(c) => {
                let (key, n) = self.sync.condvars[c.0].broadcast();
                let cost = if n > 0 {
                    self.do_futex_wake(cpu, key, n, t)
                } else {
                    0
                };
                Flow::Continue(t + cost)
            }
            SyncOp::SemWait(s) => match self.sync.sems[s.0].wait() {
                SemEffect::Acquired => {
                    self.charge_useful(cpu, 20);
                    Flow::Continue(t + 20)
                }
                SemEffect::Wait { futex } => {
                    self.do_futex_wait(cpu, tid, futex, Resume::Simple, t);
                    Flow::Break
                }
            },
            SyncOp::SemPost(s) => {
                let wake = self.sync.sems[s.0].post();
                self.charge_useful(cpu, 20);
                let mut t2 = t + 20;
                if let Some((key, n)) = wake {
                    t2 = t2 + self.do_futex_wake(cpu, key, n, t2);
                }
                Flow::Continue(t2)
            }
            SyncOp::SpinAcquire(l) => {
                let node = self.node_of(cpu);
                match self.sync.spinlocks[l.0].acquire(tid, node) {
                    SpinEffect::Acquired { cost_ns } => {
                        self.charge_useful(cpu, cost_ns);
                        Flow::Continue(t + cost_ns)
                    }
                    SpinEffect::MustSpin { sig } => {
                        self.spin_episodes += 1;
                        self.conts[tid.0] = Cont::SpinLock {
                            lock: l,
                            is_mutex: false,
                            sig,
                            budget_left: None,
                        };
                        self.begin_spin_segment(cpu, tid, sig, None, t);
                        Flow::Break
                    }
                }
            }
            SyncOp::SpinRelease(l) => {
                let node = self.node_of(cpu);
                let (cost, granted) = self.sync.spinlocks[l.0].release(tid, node);
                self.charge_useful(cpu, cost);
                let t2 = t + cost;
                match granted {
                    Some(w) => self.deliver_grant(w, false, l, t2),
                    None => self.barge_check(l, t2),
                }
                Flow::Continue(t2)
            }
            SyncOp::FlagSpinWhileEq {
                flag,
                while_eq,
                sig,
            } => {
                if self.sync.flag_spin_begin(flag, tid, while_eq) {
                    Flow::Continue(t)
                } else {
                    self.spin_episodes += 1;
                    self.conts[tid.0] = Cont::SpinFlag {
                        flag,
                        while_eq,
                        sig,
                    };
                    self.begin_spin_segment(cpu, tid, sig, None, t);
                    Flow::Break
                }
            }
            SyncOp::FlagSet { flag, value } => {
                let released = self.sync.flag_set(flag, value);
                self.charge_useful(cpu, 15);
                let t2 = t + 15;
                for w in released {
                    self.release_flag_spinner(w, t2);
                }
                Flow::Continue(t2)
            }
            SyncOp::EpollWait(ep) => {
                use oversub_ksync::EpollWaitResult;
                match self.epoll.epoll_wait(
                    &mut self.sched,
                    &mut self.tasks,
                    tid,
                    ep,
                    CpuId(cpu),
                    t,
                ) {
                    EpollWaitResult::Ready { events: _, cost_ns } => {
                        self.charge_kernel(cpu, cost_ns);
                        Flow::Continue(t + cost_ns)
                    }
                    EpollWaitResult::Blocked(out) => {
                        self.charge_kernel(cpu, out.cost_ns);
                        self.conts[tid.0] = Cont::Blocked(Resume::EpollReady(ep));
                        self.stint_epoch[cpu] += 1;
                        self.seg_epoch[cpu] += 1;
                        self.ple_exit_at[cpu] = None;
                        self.sched_resched(t + out.cost_ns, cpu);
                        Flow::Break
                    }
                }
            }
            SyncOp::EpollPost(ep, n) => {
                let report =
                    self.epoll
                        .epoll_post(&mut self.sched, &mut self.tasks, ep, n, CpuId(cpu), t);
                self.charge_kernel(cpu, report.waker_cost_ns);
                let done = t + report.waker_cost_ns;
                self.post_wake_events(&report.woken, done);
                Flow::Continue(done)
            }
        }
    }

    // -----------------------------------------------------------------
    // Mutexes
    // -----------------------------------------------------------------

    fn acquire_mutex(&mut self, cpu: usize, tid: TaskId, l: LockId, t: SimTime) -> Flow {
        let node = self.node_of(cpu);
        match self.sync.mutexes[l.0].acquire(tid, node) {
            MutexAcquire::Acquired { cost_ns } => {
                self.charge_useful(cpu, cost_ns);
                self.conts[tid.0] = Cont::Ready;
                Flow::Continue(t + cost_ns)
            }
            MutexAcquire::Park { futex } => {
                self.do_futex_wait(cpu, tid, futex, Resume::MutexRetry(l), t);
                Flow::Break
            }
            MutexAcquire::SpinThenPark {
                sig,
                spin_ns,
                futex: _,
            } => {
                self.spin_episodes += 1;
                self.conts[tid.0] = Cont::SpinLock {
                    lock: l,
                    is_mutex: true,
                    sig,
                    budget_left: Some(spin_ns),
                };
                self.begin_spin_segment(cpu, tid, sig, Some(spin_ns), t);
                Flow::Break
            }
        }
    }

    /// A scheduled task resumes a lock spin: claim if possible, else keep
    /// spinning.
    #[allow(clippy::too_many_arguments)]
    fn resume_lock_spin(
        &mut self,
        cpu: usize,
        tid: TaskId,
        lock: LockId,
        is_mutex: bool,
        sig: SpinSig,
        budget_left: Option<u64>,
        t: SimTime,
    ) -> Flow {
        let claimed = if is_mutex {
            self.sync.mutexes[lock.0].try_claim(tid)
        } else {
            self.sync.spinlocks[lock.0].try_claim(tid)
        };
        if let Some(cost) = claimed {
            self.charge_useful(cpu, cost);
            self.conts[tid.0] = Cont::Ready;
            return Flow::Continue(t + cost);
        }
        if budget_left == Some(0) {
            self.park_spinner(cpu, tid, t);
            return Flow::Break;
        }
        self.begin_spin_segment(cpu, tid, sig, budget_left, t);
        Flow::Break
    }

    /// A spin-then-park waiter's budget expired: convert to a futex park.
    pub(crate) fn park_spinner(&mut self, cpu: usize, tid: TaskId, t: SimTime) {
        let Cont::SpinLock { lock, is_mutex, .. } = self.conts[tid.0] else {
            return;
        };
        debug_assert!(is_mutex, "only mutex kinds have park deadlines");
        self.sync.mutexes[lock.0].note_parked(tid);
        let futex = self.sync.mutexes[lock.0].futex_key_for(tid);
        self.do_futex_wait(cpu, tid, futex, Resume::MutexRetry(lock), t);
    }

    // -----------------------------------------------------------------
    // Lock grants and flag releases across CPUs
    // -----------------------------------------------------------------

    /// A release designated `w` as the next holder. If `w` is running
    /// (spinning) somewhere, interrupt it so it claims now; otherwise it
    /// claims when next scheduled (the lock-holder-preemption case: the
    /// hand-off latency is the victim's scheduling delay).
    fn deliver_grant(&mut self, w: TaskId, is_mutex: bool, lock: LockId, t: SimTime) {
        if self.tasks[w.0].state != TaskState::Running {
            return;
        }
        let wcpu = self.tasks[w.0].last_cpu.0;
        debug_assert_eq!(self.sched.cpus[wcpu].current, Some(w));
        let t2 = t.max_of(self.sched.cpus[wcpu].accounted_until);
        self.account_progress(wcpu, t2);
        self.seg_epoch[wcpu] += 1;
        self.ple_exit_at[wcpu] = None;
        self.seg_event[wcpu] = SegEventKind::None;
        let claimed = if is_mutex {
            self.sync.mutexes[lock.0].try_claim(w)
        } else {
            self.sync.spinlocks[lock.0].try_claim(w)
        };
        let cost = claimed.expect("designated heir must be claimable");
        self.charge_useful(wcpu, cost);
        self.conts[w.0] = Cont::Ready;
        self.advance_task(wcpu, t2 + cost);
    }

    /// Barging release: the lock is free; the first *running* spinner (by
    /// CPU index) claims it immediately.
    fn barge_check(&mut self, l: LockId, t: SimTime) {
        // Find a running waiter of this spinlock.
        let waiter = self
            .sched
            .cpus
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.current.map(|tid| (i, tid)))
            .find(|&(_, tid)| {
                matches!(
                    self.conts[tid.0],
                    Cont::SpinLock { lock, is_mutex: false, .. } if lock == l
                )
            });
        if let Some((wcpu, w)) = waiter {
            let t2 = t.max_of(self.sched.cpus[wcpu].accounted_until);
            self.account_progress(wcpu, t2);
            self.seg_epoch[wcpu] += 1;
            self.ple_exit_at[wcpu] = None;
            self.seg_event[wcpu] = SegEventKind::None;
            let cost = self.sync.spinlocks[l.0]
                .try_claim(w)
                .expect("running barge spinner must claim a free lock");
            self.charge_useful(wcpu, cost);
            self.conts[w.0] = Cont::Ready;
            self.advance_task(wcpu, t2 + cost);
        }
    }

    /// A flag changed and `w`'s spin condition is satisfied.
    fn release_flag_spinner(&mut self, w: TaskId, t: SimTime) {
        match self.tasks[w.0].state {
            TaskState::Running => {
                let wcpu = self.tasks[w.0].last_cpu.0;
                let t2 = t.max_of(self.sched.cpus[wcpu].accounted_until);
                self.account_progress(wcpu, t2);
                self.conts[w.0] = Cont::Ready;
                self.seg_epoch[wcpu] += 1;
                self.ple_exit_at[wcpu] = None;
                self.seg_event[wcpu] = SegEventKind::None;
                self.advance_task(wcpu, t2);
            }
            _ => {
                // Descheduled mid-spin: its accumulated spin time is
                // already accounted; it proceeds when next scheduled.
                self.conts[w.0] = Cont::Ready;
            }
        }
    }

    // -----------------------------------------------------------------
    // Kernel blocking wrappers
    // -----------------------------------------------------------------

    fn do_futex_wait(
        &mut self,
        cpu: usize,
        tid: TaskId,
        key: FutexKey,
        resume: Resume,
        t: SimTime,
    ) {
        let out = self
            .futex
            .futex_wait(&mut self.sched, &mut self.tasks, tid, key, CpuId(cpu), t);
        self.trace.record(
            t,
            cpu,
            tid,
            match out.mode {
                oversub_ksync::WaitMode::Sleep => TraceKind::Sleep,
                oversub_ksync::WaitMode::Virtual => TraceKind::VbPark,
            },
        );
        self.charge_kernel(cpu, out.cost_ns);
        self.conts[tid.0] = Cont::Blocked(resume);
        self.stint_epoch[cpu] += 1;
        self.seg_epoch[cpu] += 1;
        self.ple_exit_at[cpu] = None;
        self.sched_resched(t + out.cost_ns, cpu);
    }

    fn do_futex_wake(&mut self, cpu: usize, key: FutexKey, n: usize, t: SimTime) -> u64 {
        let report = self
            .futex
            .futex_wake(&mut self.sched, &mut self.tasks, key, n, CpuId(cpu), t);
        self.charge_kernel(cpu, report.waker_cost_ns);
        let done = t + report.waker_cost_ns;
        self.post_wake_events(&report.woken, done);
        report.waker_cost_ns
    }

    /// Schedule follow-up events for a batch of woken tasks.
    fn post_wake_events(&mut self, woken: &[(TaskId, CpuId, bool)], done: SimTime) {
        for &(w, wcpu, preempt) in woken {
            self.trace.record(done, wcpu.0, w, TraceKind::Wake);
            let delay = self.wake_resched_delay(wcpu.0);
            self.sched_resched(done + delay, wcpu.0);
            if preempt && self.sched.cpus[wcpu.0].current.is_some() {
                self.queue
                    .schedule_nocancel(done + delay, Event::PreemptCheck(wcpu.0));
            }
            // nohz idle kick: if the woken task landed on a busy queue
            // while another CPU sits idle, poke one idle CPU so its idle
            // balance can pull the waiter over (as CFS does at wakeup).
            if self.sched.cpus[wcpu.0].current.is_some() {
                let idle = self
                    .sched
                    .topo
                    .cpu_ids()
                    .find(|c| self.sched.online[c.0] && self.sched.cpus[c.0].is_idle());
                if let Some(c) = idle {
                    self.sched_resched(done, c.0);
                }
            }
        }
    }

    // -----------------------------------------------------------------
    // Segment scheduling
    // -----------------------------------------------------------------

    fn begin_work_segment(&mut self, cpu: usize, tid: TaskId, t: SimTime) {
        self.begin_work_segment_kind(cpu, tid, t, RunKind::Useful);
    }

    fn begin_work_segment_kind(&mut self, cpu: usize, tid: TaskId, t: SimTime, kind: RunKind) {
        let Cont::Work { left_ns, .. } = self.conts[tid.0] else {
            unreachable!("work segment without Work cont");
        };
        let rate = self.sched.smt_factor(CpuId(cpu));
        let scaled = (left_ns as f64 / rate).ceil() as u64;
        self.seg_epoch[cpu] += 1;
        self.seg_rate[cpu] = rate;
        self.run_kind[cpu] = kind;
        self.seg_done_at[cpu] = t + scaled.max(1);
        self.seg_event[cpu] = SegEventKind::WorkEnd;
        self.ple_exit_at[cpu] = None;
        self.queue.schedule(
            self.seg_done_at[cpu],
            Event::SegEnd(cpu, self.seg_epoch[cpu]),
        );
    }

    fn begin_spin_segment(
        &mut self,
        cpu: usize,
        tid: TaskId,
        sig: SpinSig,
        budget: Option<u64>,
        t: SimTime,
    ) {
        self.seg_epoch[cpu] += 1;
        self.seg_rate[cpu] = 1.0;
        self.run_kind[cpu] = RunKind::Spin(sig);
        match budget {
            Some(b) => {
                self.seg_done_at[cpu] = t + b.max(1);
                self.seg_event[cpu] = SegEventKind::ParkDeadline;
                self.queue.schedule(
                    self.seg_done_at[cpu],
                    Event::SegEnd(cpu, self.seg_epoch[cpu]),
                );
            }
            None => {
                self.seg_done_at[cpu] = SimTime::NEVER;
                self.seg_event[cpu] = SegEventKind::None;
            }
        }
        // Arm PLE if it can see this loop.
        if self.ple.can_see(&sig, self.cfg.env) {
            let w = self.ple_window[tid.0];
            let at = t + w;
            self.ple_exit_at[cpu] = Some(at);
            self.queue
                .schedule_nocancel(at, Event::PleExit(cpu, self.seg_epoch[cpu]));
        } else {
            self.ple_exit_at[cpu] = None;
        }
    }
}
