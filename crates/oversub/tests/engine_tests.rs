//! Integration tests of the simulation engine: scheduling, blocking,
//! spinning, VB, BWD, elasticity, and determinism.

use oversub::workload::{ThreadSpec, Workload, WorldBuilder};
use oversub::{run, run_labelled, ElasticEvent, MachineSpec, Mechanisms, RunConfig, RunReport};
use oversub_simcore::{SimTime, MILLIS};
use oversub_task::{Action, BarrierId, LockId, ProgCtx, Program, ScriptProgram, SpinSig, SyncOp};

// ---------------------------------------------------------------------
// Workload helpers
// ---------------------------------------------------------------------

/// `threads` independent compute tasks of `ns` each.
struct ComputeBatch {
    threads: usize,
    ns: u64,
}

impl Workload for ComputeBatch {
    fn name(&self) -> &str {
        "compute-batch"
    }
    fn build(&mut self, w: &mut WorldBuilder) {
        for _ in 0..self.threads {
            w.spawn(ThreadSpec::new(Box::new(ScriptProgram::once(vec![
                Action::Compute { ns: self.ns },
            ]))));
        }
    }
}

/// Barrier-synchronized phases: `iters` rounds of compute + barrier.
struct BarrierBench {
    threads: usize,
    iters: usize,
    compute_ns: u64,
}

impl Workload for BarrierBench {
    fn name(&self) -> &str {
        "barrier-bench"
    }
    fn build(&mut self, w: &mut WorldBuilder) {
        let b: BarrierId = w.barrier(self.threads);
        for i in 0..self.threads {
            let mut script = Vec::with_capacity(self.iters * 2 + 1);
            for k in 0..self.iters {
                // Slightly staggered compute so arrivals are not all
                // simultaneous (deterministic, per-thread).
                let ns = self.compute_ns + (i as u64 * 37 + k as u64 * 13) % 500;
                script.push(Action::Compute { ns });
                script.push(Action::Sync(SyncOp::BarrierWait(b)));
            }
            w.spawn(ThreadSpec::new(Box::new(ScriptProgram::once(script))));
        }
    }
}

/// Mutex-protected critical sections.
struct MutexBench {
    threads: usize,
    iters: usize,
    cs_ns: u64,
    out_ns: u64,
}

impl Workload for MutexBench {
    fn name(&self) -> &str {
        "mutex-bench"
    }
    fn build(&mut self, w: &mut WorldBuilder) {
        let m: LockId = w.mutex();
        for _ in 0..self.threads {
            let mut script = Vec::new();
            for _ in 0..self.iters {
                script.push(Action::Sync(SyncOp::MutexLock(m)));
                script.push(Action::Compute { ns: self.cs_ns });
                script.push(Action::Sync(SyncOp::MutexUnlock(m)));
                script.push(Action::Compute { ns: self.out_ns });
            }
            w.spawn(ThreadSpec::new(Box::new(ScriptProgram::once(script))));
        }
    }
}

/// Spinlock-protected critical sections.
struct SpinBench {
    threads: usize,
    iters: usize,
    cs_ns: u64,
    out_ns: u64,
    policy: oversub::locks::SpinPolicy,
}

impl Workload for SpinBench {
    fn name(&self) -> &str {
        "spin-bench"
    }
    fn build(&mut self, w: &mut WorldBuilder) {
        let l = w.spinlock(self.policy);
        for _ in 0..self.threads {
            let mut script = Vec::new();
            for _ in 0..self.iters {
                script.push(Action::Sync(SyncOp::SpinAcquire(l)));
                script.push(Action::Compute { ns: self.cs_ns });
                script.push(Action::Sync(SyncOp::SpinRelease(l)));
                script.push(Action::Compute { ns: self.out_ns });
            }
            w.spawn(ThreadSpec::new(Box::new(ScriptProgram::once(script))));
        }
    }
}

/// Producer/consumer over a condition variable.
struct CondBench {
    consumers: usize,
    rounds: usize,
}

impl Workload for CondBench {
    fn name(&self) -> &str {
        "cond-bench"
    }
    fn build(&mut self, w: &mut WorldBuilder) {
        let m = w.mutex();
        let cv = w.condvar();
        // Consumers: lock, wait, unlock — repeated.
        for _ in 0..self.consumers {
            let mut script = Vec::new();
            for _ in 0..self.rounds {
                script.push(Action::Sync(SyncOp::MutexLock(m)));
                script.push(Action::Sync(SyncOp::CondWait { cond: cv, mutex: m }));
                script.push(Action::Compute { ns: 2_000 });
                script.push(Action::Sync(SyncOp::MutexUnlock(m)));
            }
            w.spawn(ThreadSpec::new(Box::new(ScriptProgram::once(script))));
        }
        // Producer: periodically broadcast.
        let consumers = self.consumers;
        let rounds = self.rounds;
        let mut script = Vec::new();
        for _ in 0..rounds {
            script.push(Action::Compute { ns: 200_000 });
            script.push(Action::Sync(SyncOp::CondBroadcast(cv)));
        }
        let _ = consumers;
        w.spawn(ThreadSpec::new(Box::new(ScriptProgram::once(script))));
    }
}

/// A flag-passing pipeline: stage i spins until flag[i] == round, then
/// computes and releases flag[i+1] (custom busy-waiting, Figure 14 style).
struct FlagPipeline {
    stages: usize,
    rounds: usize,
    work_ns: u64,
}

struct StageProg {
    my_flag: oversub_task::FlagId,
    next_flag: Option<oversub_task::FlagId>,
    sig: SpinSig,
    rounds: usize,
    work_ns: u64,
    round: usize,
    step: u8,
}

impl Program for StageProg {
    fn next(&mut self, _ctx: &mut ProgCtx<'_>) -> Action {
        if self.round >= self.rounds {
            return Action::Exit;
        }
        match self.step {
            0 => {
                self.step = 1;
                // Wait until my flag reaches round+1 (spin while it equals
                // the current round value).
                Action::Sync(SyncOp::FlagSpinWhileEq {
                    flag: self.my_flag,
                    while_eq: self.round as u64,
                    sig: self.sig,
                })
            }
            1 => {
                self.step = 2;
                Action::Compute { ns: self.work_ns }
            }
            _ => {
                self.step = 0;
                self.round += 1;
                match self.next_flag {
                    Some(f) => Action::Sync(SyncOp::FlagSet {
                        flag: f,
                        value: self.round as u64,
                    }),
                    None => Action::Compute { ns: 1 },
                }
            }
        }
    }
}

/// The driver stage that kicks each round.
struct DriverProg {
    first_flag: oversub_task::FlagId,
    rounds: usize,
    round: usize,
    work_ns: u64,
    step: u8,
    last_flag: oversub_task::FlagId,
    sig: SpinSig,
}

impl Program for DriverProg {
    fn next(&mut self, _ctx: &mut ProgCtx<'_>) -> Action {
        if self.round >= self.rounds {
            return Action::Exit;
        }
        match self.step {
            0 => {
                self.step = 1;
                Action::Compute { ns: self.work_ns }
            }
            1 => {
                self.step = 2;
                Action::Sync(SyncOp::FlagSet {
                    flag: self.first_flag,
                    value: self.round as u64 + 1,
                })
            }
            _ => {
                self.step = 0;
                self.round += 1;
                // Wait for the pipeline to complete the round.
                Action::Sync(SyncOp::FlagSpinWhileEq {
                    flag: self.last_flag,
                    while_eq: self.round as u64 - 1,
                    sig: self.sig,
                })
            }
        }
    }
}

impl Workload for FlagPipeline {
    fn name(&self) -> &str {
        "flag-pipeline"
    }
    fn build(&mut self, w: &mut WorldBuilder) {
        // flags[0] is set by the driver; stage i waits on flags[i], sets
        // flags[i+1]; the driver waits on flags[stages].
        let flags: Vec<_> = (0..=self.stages).map(|_| w.flag(0)).collect();
        for i in 0..self.stages {
            w.spawn(ThreadSpec::new(Box::new(StageProg {
                my_flag: flags[i],
                next_flag: Some(flags[i + 1]),
                sig: SpinSig::bare_loop(i as u64 + 1),
                rounds: self.rounds,
                work_ns: self.work_ns,
                round: 0,
                step: 0,
            })));
        }
        w.spawn(ThreadSpec::new(Box::new(DriverProg {
            first_flag: flags[0],
            last_flag: flags[self.stages],
            rounds: self.rounds,
            round: 0,
            work_ns: self.work_ns,
            step: 0,
            sig: SpinSig::bare_loop(99),
        })));
    }
}

fn secs(r: &RunReport) -> f64 {
    r.makespan_secs()
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

#[test]
fn compute_batch_scales_with_cores() {
    // 8 threads x 10ms on 8 cores: ~10ms. Same on 2 cores: ~40ms.
    let ms10 = 10 * MILLIS;
    let r8 = run(
        &mut ComputeBatch {
            threads: 8,
            ns: ms10,
        },
        &RunConfig::vanilla(8),
    );
    let r2 = run(
        &mut ComputeBatch {
            threads: 8,
            ns: ms10,
        },
        &RunConfig::vanilla(2),
    );
    assert!(
        (r8.makespan_ns as f64) < 1.05 * ms10 as f64,
        "8 on 8 should be ~10ms, got {}",
        r8.makespan_ns
    );
    let ratio = r2.makespan_ns as f64 / r8.makespan_ns as f64;
    assert!(
        (3.5..=4.5).contains(&ratio),
        "2 cores should be ~4x slower, got {ratio}"
    );
}

#[test]
fn oversubscribed_compute_has_negligible_overhead() {
    // The paper's core claim for compute-bound work: 32T on 8 cores is
    // barely slower than 8T on 8 cores (same total work).
    let total_work = 320 * MILLIS;
    let r8 = run(
        &mut ComputeBatch {
            threads: 8,
            ns: total_work / 8,
        },
        &RunConfig::vanilla(8),
    );
    let r32 = run(
        &mut ComputeBatch {
            threads: 32,
            ns: total_work / 32,
        },
        &RunConfig::vanilla(8),
    );
    let ratio = r32.makespan_ns as f64 / r8.makespan_ns as f64;
    assert!(
        (0.95..=1.10).contains(&ratio),
        "oversubscribed compute ratio {ratio}"
    );
}

#[test]
fn barrier_bench_runs_and_vb_helps_oversubscribed() {
    let mk = || BarrierBench {
        threads: 32,
        iters: 60,
        compute_ns: 300_000,
    };
    let vanilla = run_labelled(&mut mk(), &RunConfig::vanilla(8), "32T(vanilla)");
    let vb = run_labelled(
        &mut mk(),
        &RunConfig::vanilla(8).with_mech(Mechanisms::vb_only()),
        "32T(optimized)",
    );
    // VB must meaningfully reduce execution time for group wakeups.
    assert!(
        vb.makespan_ns < vanilla.makespan_ns,
        "VB {} should beat vanilla {}",
        secs(&vb),
        secs(&vanilla)
    );
    // And use virtual waits rather than sleeps.
    assert!(vb.blocking.virtual_waits > 0, "VB path must be exercised");
    assert!(vanilla.blocking.virtual_waits == 0);
    // VB slashes migrations.
    assert!(
        vb.tasks.migrations() * 4 < vanilla.tasks.migrations().max(4),
        "VB migrations {} vs vanilla {}",
        vb.tasks.migrations(),
        vanilla.tasks.migrations()
    );
}

#[test]
fn barrier_not_oversubscribed_unaffected_by_vb() {
    let mk = || BarrierBench {
        threads: 8,
        iters: 40,
        compute_ns: 300_000,
    };
    let vanilla = run(&mut mk(), &RunConfig::vanilla(8));
    let vb = run(
        &mut mk(),
        &RunConfig::vanilla(8).with_mech(Mechanisms::vb_only()),
    );
    let ratio = vb.makespan_ns as f64 / vanilla.makespan_ns as f64;
    assert!(
        (0.8..=1.2).contains(&ratio),
        "VB should be neutral without oversubscription: {ratio}"
    );
}

#[test]
fn mutex_bench_critical_sections_serialize() {
    // 4 threads x 100 sections x 50µs CS on 4 cores: lower bound is the
    // serialized CS time = 20ms.
    let r = run(
        &mut MutexBench {
            threads: 4,
            iters: 100,
            cs_ns: 50_000,
            out_ns: 1_000,
        },
        &RunConfig::vanilla(4),
    );
    assert!(
        r.makespan_ns >= 20 * MILLIS,
        "critical sections must serialize: {}",
        r.makespan_ns
    );
    assert!(
        r.makespan_ns < 40 * MILLIS,
        "but not be pathologically slow: {}",
        r.makespan_ns
    );
}

#[test]
fn spinlock_undersubscribed_is_fast() {
    let r = run(
        &mut SpinBench {
            threads: 4,
            iters: 50,
            cs_ns: 20_000,
            out_ns: 20_000,
            policy: oversub::locks::SpinPolicy::mcs(),
        },
        &RunConfig::vanilla(4),
    );
    // Serialized CS floor: 50 * 4 * 20µs = 4ms. Spinning costs nothing
    // extra with dedicated cores.
    assert!(r.makespan_ns >= 4 * MILLIS);
    assert!(
        r.makespan_ns < 8 * MILLIS,
        "undersubscribed spin too slow: {}",
        r.makespan_ns
    );
}

#[test]
fn oversubscribed_spinning_collapses_and_bwd_rescues() {
    let mk = || SpinBench {
        threads: 16,
        iters: 40,
        cs_ns: 20_000,
        out_ns: 20_000,
        policy: oversub::locks::SpinPolicy::mcs(),
    };
    let base = run(
        &mut SpinBench {
            threads: 4,
            iters: 160, // same total work
            cs_ns: 20_000,
            out_ns: 20_000,
            policy: oversub::locks::SpinPolicy::mcs(),
        },
        &RunConfig::vanilla(4),
    );
    let vanilla = run(&mut mk(), &RunConfig::vanilla(4));
    let bwd = run(
        &mut mk(),
        &RunConfig::vanilla(4).with_mech(Mechanisms::bwd_only()),
    );
    // Vanilla oversubscribed spinning is far slower than baseline.
    let collapse = vanilla.makespan_ns as f64 / base.makespan_ns as f64;
    assert!(
        collapse > 3.0,
        "expected spin collapse, got only {collapse}x"
    );
    // BWD recovers most of it.
    assert!(
        bwd.makespan_ns * 2 < vanilla.makespan_ns,
        "BWD {} should be >=2x faster than vanilla {}",
        secs(&bwd),
        secs(&vanilla)
    );
    assert!(bwd.bwd.detections > 0);
    assert!(bwd.tasks.bwd_deschedules > 0);
    // Vanilla wastes most busy time spinning; BWD does not.
    assert!(vanilla.cpus.spin_ns > vanilla.cpus.useful_ns);
}

#[test]
fn condvar_broadcast_wakes_everyone() {
    let r = run(
        &mut CondBench {
            consumers: 8,
            rounds: 10,
        },
        &RunConfig::vanilla(4),
    );
    // All tasks must have exited (no deadlock): makespan below the cap.
    assert!(r.makespan_ns < SimTime::from_secs(500).as_nanos());
    assert!(r.blocking.wakes > 0);
}

#[test]
fn flag_pipeline_progresses_and_bwd_helps_oversubscribed() {
    let mk = || FlagPipeline {
        stages: 8,
        rounds: 30,
        work_ns: 50_000,
    };
    // Undersubscribed: 9 tasks on 9 cores.
    let under = run(&mut mk(), &RunConfig::vanilla(9));
    assert!(
        under.makespan_ns < 100 * MILLIS,
        "pipeline should fly undersubscribed: {}",
        under.makespan_ns
    );
    // Oversubscribed on 2 cores.
    let vanilla = run(&mut mk(), &RunConfig::vanilla(2));
    let bwd = run(
        &mut mk(),
        &RunConfig::vanilla(2).with_mech(Mechanisms::bwd_only()),
    );
    assert!(
        bwd.makespan_ns < vanilla.makespan_ns,
        "BWD {} vs vanilla {}",
        secs(&bwd),
        secs(&vanilla)
    );
}

#[test]
fn runs_are_deterministic() {
    let mk = || BarrierBench {
        threads: 16,
        iters: 20,
        compute_ns: 200_000,
    };
    let a = run(&mut mk(), &RunConfig::vanilla(4).with_seed(7));
    let b = run(&mut mk(), &RunConfig::vanilla(4).with_seed(7));
    assert_eq!(a.makespan_ns, b.makespan_ns);
    assert_eq!(a.tasks.migrations(), b.tasks.migrations());
    assert_eq!(a.cpus.context_switches, b.cpus.context_switches);
    assert_eq!(a.blocking.wakes, b.blocking.wakes);
}

#[test]
fn time_accounting_is_conserved() {
    let r = run(
        &mut MutexBench {
            threads: 8,
            iters: 50,
            cs_ns: 10_000,
            out_ns: 30_000,
        },
        &RunConfig::vanilla(4),
    );
    // Sum of per-cpu buckets must equal cpus * makespan (within rounding
    // slack per event).
    let total = r.cpus.useful_ns + r.cpus.spin_ns + r.cpus.kernel_ns + r.cpus.idle_ns;
    let expect = r.makespan_ns * 4;
    let slack = expect / 100 + 1_000_000;
    assert!(
        total.abs_diff(expect) < slack,
        "accounting drift: buckets {total} vs {expect}"
    );
}

#[test]
fn elasticity_speeds_up_when_cores_grow() {
    let mk = || ComputeBatch {
        threads: 32,
        ns: 20 * MILLIS,
    };
    let base = run(
        &mut mk(),
        &RunConfig::vanilla(32).with_machine(MachineSpec::PaperN(32)),
    );
    // Start with 8 online cores, grow to 32 after 20 ms.
    let mut cfg = RunConfig::vanilla(32).with_machine(MachineSpec::PaperN(32));
    cfg.initial_cores = Some(8);
    cfg.elastic = vec![ElasticEvent {
        at: SimTime::from_millis(20),
        cores: 32,
    }];
    let grown = run(&mut mk(), &cfg);
    // Must be slower than always-32 but far faster than always-8 (80ms).
    assert!(grown.makespan_ns > base.makespan_ns);
    assert!(
        grown.makespan_ns < 70 * MILLIS,
        "cores were added, run should accelerate: {}",
        grown.makespan_ns
    );
    // Shrink case: start 8, drop to 2.
    let mut cfg = RunConfig::vanilla(8);
    cfg.elastic = vec![ElasticEvent {
        at: SimTime::from_millis(20),
        cores: 2,
    }];
    let shrunk = run(&mut mk(), &cfg);
    assert!(
        shrunk.makespan_ns > 150 * MILLIS,
        "losing cores must slow the run: {}",
        shrunk.makespan_ns
    );
}

#[test]
fn pinned_threads_stay_put() {
    let mut cfg = RunConfig::vanilla(4);
    cfg.pinned = true;
    let r = run(
        &mut BarrierBench {
            threads: 16,
            iters: 20,
            compute_ns: 100_000,
        },
        &cfg,
    );
    assert_eq!(r.tasks.migrations(), 0, "pinned tasks must never migrate");
}

#[test]
fn smt_machine_is_slower_than_real_cores() {
    let mk = || ComputeBatch {
        threads: 8,
        ns: 10 * MILLIS,
    };
    let cores8 = run(
        &mut mk(),
        &RunConfig::vanilla(8).with_machine(MachineSpec::Paper8Cores),
    );
    let ht8 = run(
        &mut mk(),
        &RunConfig::vanilla(8).with_machine(MachineSpec::Paper8Hyperthreads),
    );
    assert!(
        ht8.makespan_ns > (cores8.makespan_ns as f64 * 1.3) as u64,
        "8 HT on 4 cores should be markedly slower: {} vs {}",
        ht8.makespan_ns,
        cores8.makespan_ns
    );
}

#[test]
fn vanilla_wakeups_cost_more_with_more_waiters() {
    // Mean wakeup latency under heavy oversubscription should exceed the
    // undersubscribed case.
    let over = run(
        &mut BarrierBench {
            threads: 32,
            iters: 30,
            compute_ns: 200_000,
        },
        &RunConfig::vanilla(8),
    );
    let under = run(
        &mut BarrierBench {
            threads: 8,
            iters: 30,
            compute_ns: 200_000,
        },
        &RunConfig::vanilla(8),
    );
    assert!(
        over.tasks.mean_wakeup_latency_ns() > under.tasks.mean_wakeup_latency_ns(),
        "oversubscribed wakeups should be slower: {} vs {}",
        over.tasks.mean_wakeup_latency_ns(),
        under.tasks.mean_wakeup_latency_ns()
    );
}

#[test]
fn traced_runs_record_the_timeline() {
    use oversub::run_traced;
    use oversub::trace::TraceKind;
    let mut wl = BarrierBench {
        threads: 8,
        iters: 10,
        compute_ns: 100_000,
    };
    let cfg = RunConfig::vanilla(2).with_seed(3).traced();
    let (report, trace) = run_traced(&mut wl, &cfg);
    assert!(report.makespan_ns > 0);
    assert!(!trace.is_empty(), "trace must record events");
    // Every thread ran and slept at least once.
    for i in 0..8 {
        let t = oversub_task::TaskId(i);
        assert!(trace.count(t, TraceKind::Run) > 0, "T{i} never ran");
        assert!(trace.count(t, TraceKind::Sleep) > 0, "T{i} never slept");
        assert!(trace.count(t, TraceKind::Wake) > 0, "T{i} never woken");
    }
    // The rendered tail is non-empty and mentions the kinds.
    let tail = trace.render_tail(50);
    assert!(tail.contains("run"));
    // Untraced runs record nothing.
    let (_, quiet) = run_traced(
        &mut BarrierBench {
            threads: 4,
            iters: 5,
            compute_ns: 100_000,
        },
        &RunConfig::vanilla(2),
    );
    assert!(quiet.is_empty());
}

#[test]
fn ple_fires_only_for_pause_loops_inside_vms() {
    let run = |policy: oversub::locks::SpinPolicy, vm: bool| {
        let mut wl = SpinBench {
            threads: 8,
            iters: 30,
            cs_ns: 150_000,
            out_ns: 50_000,
            policy,
        };
        let mut cfg = RunConfig::vanilla(2).with_mech(Mechanisms::ple_only());
        if vm {
            cfg = cfg.in_vm();
        }
        run_labelled(&mut wl, &cfg, "ple-probe")
    };
    // PAUSE-based loop in a VM: PLE exits happen.
    let pause_vm = run(oversub::locks::SpinPolicy::pthread(), true);
    assert!(
        pause_vm.bwd.ple_exits > 0,
        "PLE must see PAUSE loops in VMs"
    );
    // Bare loop in a VM: invisible.
    let bare_vm = run(oversub::locks::SpinPolicy::ttas(), true);
    assert_eq!(bare_vm.bwd.ple_exits, 0, "bare loops are invisible to PLE");
    // PAUSE loop in a container: no VM exits to take.
    let pause_ct = run(oversub::locks::SpinPolicy::pthread(), false);
    assert_eq!(pause_ct.bwd.ple_exits, 0, "PLE does nothing for containers");
}

#[test]
fn bwd_sees_all_loop_shapes() {
    // The same probe, but BWD detects both shapes in both environments.
    for policy in [
        oversub::locks::SpinPolicy::pthread(),
        oversub::locks::SpinPolicy::ttas(),
    ] {
        let mut wl = SpinBench {
            threads: 8,
            iters: 30,
            cs_ns: 150_000,
            out_ns: 50_000,
            policy,
        };
        let cfg = RunConfig::vanilla(2).with_mech(Mechanisms::bwd_only());
        let r = run_labelled(&mut wl, &cfg, "bwd-probe");
        assert!(
            r.bwd.detections > 0,
            "BWD must detect {} loops",
            policy.name
        );
    }
}

/// Two equal compute tasks, the second with the given weight.
struct WeightedBatch {
    second_weight: u32,
}

impl Workload for WeightedBatch {
    fn name(&self) -> &str {
        "weighted"
    }
    fn build(&mut self, w: &mut WorldBuilder) {
        for i in 0..2 {
            let spec = ThreadSpec::new(Box::new(ScriptProgram::once(vec![Action::Compute {
                ns: 40_000_000,
            }])));
            let spec = if i == 1 {
                spec.with_weight(self.second_weight)
            } else {
                spec
            };
            w.spawn(spec);
        }
    }
}

#[test]
fn task_weights_shift_cpu_shares() {
    use oversub::run_traced;
    // Equal weights: the core is split evenly, makespan ~= total work.
    let (even, _) = run_traced(
        &mut WeightedBatch {
            second_weight: 1024,
        },
        &RunConfig::vanilla(1),
    );
    assert!((78_000_000..=86_000_000).contains(&even.makespan_ns));
    // A half-weight second task accrues vruntime twice as fast, so the
    // nice-0 task finishes earlier and the total run is unchanged — but
    // the heavier task must get the CPU roughly 2:1 while both live.
    let (niced, trace) = run_traced(
        &mut WeightedBatch { second_weight: 512 },
        &RunConfig::vanilla(1).traced(),
    );
    assert!((78_000_000..=90_000_000).contains(&niced.makespan_ns));
    // The nice-0 task is descheduled less often than the niced one early
    // on; crude but effective check: it runs at least as many stints.
    use oversub::trace::TraceKind;
    let runs0 = trace.count(oversub_task::TaskId(0), TraceKind::Run);
    let runs1 = trace.count(oversub_task::TaskId(1), TraceKind::Run);
    assert!(runs0 >= 1 && runs1 >= 1);
}

#[test]
fn elastic_shrink_with_pinned_threads_stalls_and_is_visible() {
    // Pinned threads whose CPU goes offline never run again — the paper's
    // "programs crashed when CPU count decreased" for pinning. The run
    // must hit its cap with live tasks rather than panic.
    let mut wl = BarrierBench {
        threads: 8,
        iters: 50,
        compute_ns: 200_000,
    };
    let mut cfg = RunConfig::vanilla(8).pinned();
    cfg.max_time = Some(SimTime::from_millis(200));
    cfg.elastic = vec![ElasticEvent {
        at: SimTime::from_millis(5),
        cores: 2,
    }];
    let r = run(&mut wl, &cfg);
    assert_eq!(
        r.makespan_ns, 200_000_000,
        "pinned threads on offline cores must stall the barrier"
    );
}

#[test]
fn elastic_shrink_without_pinning_completes() {
    let mut wl = BarrierBench {
        threads: 8,
        iters: 50,
        compute_ns: 200_000,
    };
    let mut cfg = RunConfig::vanilla(8);
    cfg.max_time = Some(SimTime::from_secs(5));
    cfg.elastic = vec![ElasticEvent {
        at: SimTime::from_millis(5),
        cores: 2,
    }];
    let r = run(&mut wl, &cfg);
    assert!(
        r.makespan_ns < 1_000_000_000,
        "unpinned threads migrate off offline cores: {}",
        r.makespan_ns
    );
}

#[test]
fn vb_parked_tasks_survive_core_offlining() {
    // Tasks parked under VB sit on the offlined CPU's queue; the elastic
    // handler must move them and their wakes must still work.
    let mut wl = BarrierBench {
        threads: 16,
        iters: 40,
        compute_ns: 150_000,
    };
    let mut cfg = RunConfig::vanilla(8).with_mech(Mechanisms::vb_only());
    cfg.max_time = Some(SimTime::from_secs(10));
    cfg.elastic = vec![
        ElasticEvent {
            at: SimTime::from_millis(3),
            cores: 2,
        },
        ElasticEvent {
            at: SimTime::from_millis(30),
            cores: 8,
        },
    ];
    let r = run(&mut wl, &cfg);
    assert!(
        r.makespan_ns < 2_000_000_000,
        "VB-parked tasks lost across offlining: {}",
        r.makespan_ns
    );
    assert!(r.blocking.virtual_waits > 0);
}

#[test]
fn wake_never_lands_on_offline_or_disallowed_cpu() {
    // Regression for the select_cpu fallback: a task whose cpuset excludes
    // every online CPU must still be placed on an online CPU (affinity is
    // broken rather than stranding the task forever).
    struct Restricted;
    impl Workload for Restricted {
        fn name(&self) -> &str {
            "restricted"
        }
        fn build(&mut self, w: &mut WorldBuilder) {
            for _ in 0..4 {
                let mut script = Vec::new();
                for _ in 0..40 {
                    script.push(Action::IoWait { ns: 50_000 });
                    script.push(Action::Compute { ns: 50_000 });
                }
                // Allowed only on cpus 2..4, which go offline mid-run.
                w.spawn(ThreadSpec::new(Box::new(ScriptProgram::once(script))).allowed_range(2, 4));
            }
        }
    }
    let mut cfg = RunConfig::vanilla(4);
    cfg.max_time = Some(SimTime::from_secs(5));
    cfg.elastic = vec![ElasticEvent {
        at: SimTime::from_millis(1),
        cores: 2,
    }];
    let r = run(&mut Restricted, &cfg);
    assert!(
        r.makespan_ns < 2_000_000_000,
        "tasks stranded after their cpuset went offline: {}",
        r.makespan_ns
    );
}
