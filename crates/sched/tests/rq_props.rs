#![allow(clippy::collapsible_if, clippy::collapsible_match)]

//! Property tests of the CFS runqueue: counters, ordering, and the VB
//! park/unpark protocol under arbitrary operation sequences.

use oversub_hw::CpuId;
use oversub_sched::{CfsRq, VB_TAIL_BASE};
use oversub_task::{Action, FnProgram, Task, TaskId, TaskTable};
use proptest::prelude::*;

#[derive(Clone, Copy, Debug)]
enum Op {
    Enqueue(usize, u64),
    Dequeue(usize),
    Park(usize),
    Unpark(usize),
    Pick,
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..8, 0u64..1_000_000).prop_map(|(i, v)| Op::Enqueue(i, v)),
            (0usize..8).prop_map(Op::Dequeue),
            (0usize..8).prop_map(Op::Park),
            (0usize..8).prop_map(Op::Unpark),
            Just(Op::Pick),
        ],
        1..200,
    )
}

fn mk_tasks() -> TaskTable {
    let mut tt = TaskTable::new();
    for i in 0..8 {
        tt.push(Task::new(
            TaskId(i),
            Box::new(FnProgram::new("nop", |_| Action::Exit)),
            CpuId(0),
        ));
    }
    tt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Under any valid op sequence, the cached counters always agree with
    /// a recount of the tree, and pick_next never returns a parked task.
    #[test]
    fn counters_and_picks_stay_consistent(ops in arb_ops()) {
        let mut rq = CfsRq::new();
        let mut tasks = mk_tasks();
        // queued[i]: is task i currently on the queue?
        let mut queued = [false; 8];
        for op in ops {
            match op {
                Op::Enqueue(i, v) => {
                    if !queued[i] && !tasks.vb_blocked[i] {
                        tasks.vruntime[i] = v;
                        rq.enqueue(&tasks, TaskId(i));
                        queued[i] = true;
                    }
                }
                Op::Dequeue(i) => {
                    if queued[i] && !tasks.vb_blocked[i] {
                        rq.dequeue(&tasks, TaskId(i));
                        queued[i] = false;
                    }
                }
                Op::Park(i) => {
                    if queued[i] && !tasks.vb_blocked[i] {
                        let old = tasks.vruntime[i];
                        let tail = rq.next_vb_tail_vruntime();
                        tasks.vb_park(TaskId(i), tail);
                        rq.requeue(old, false, &tasks, TaskId(i));
                    }
                }
                Op::Unpark(i) => {
                    if queued[i] && tasks.vb_blocked[i] {
                        let old = tasks.vruntime[i];
                        tasks.vb_unpark(TaskId(i));
                        rq.requeue(old, true, &tasks, TaskId(i));
                    }
                }
                Op::Pick => {
                    if let Some((tid, _)) = rq.pick_next(&tasks) {
                        prop_assert!(queued[tid.0]);
                        prop_assert!(!tasks.vb_blocked[tid.0], "picked a parked task");
                        prop_assert!(tasks.vruntime[tid.0] < VB_TAIL_BASE);
                    }
                }
            }
            // Invariants after every operation.
            let (counter, tree, parked_entries) = rq.audit(&tasks);
            prop_assert_eq!(counter, tree, "schedulable counter drifted");
            let parked_actual = (0..8)
                .filter(|&i| queued[i] && tasks.vb_blocked[i])
                .count();
            prop_assert_eq!(rq.nr_vb_parked(), parked_actual);
            prop_assert_eq!(parked_entries, parked_actual);
            let total = (0..8).filter(|&i| queued[i]).count();
            prop_assert_eq!(rq.nr_queued(), total);
        }
    }

    /// The cached pick always agrees with the uncached ordered scan, and
    /// the shared waiter board always equals "this queue has schedulable
    /// waiters", under arbitrary op sequences including BWD skip flags.
    ///
    /// Skip-flag discipline mirrors the engine: *setting* a flag needs no
    /// cache action (the cache revalidates pickability on every hit), but
    /// *clearing* one must call `invalidate_pick_cache` — a task left of
    /// the cached entry may have just become pickable.
    #[test]
    fn cached_pick_matches_scan(ops in arb_ops(), skips in proptest::collection::vec((0usize..8, 0u64..2), 0..64)) {
        use std::cell::Cell;
        use std::rc::Rc;

        let mut rq = CfsRq::new();
        let board = Rc::new(Cell::new(0usize));
        rq.attach_waiter_board(Rc::clone(&board));
        let mut tasks = mk_tasks();
        let mut queued = [false; 8];
        let mut skips = skips.into_iter();
        for op in ops {
            match op {
                Op::Enqueue(i, v) => {
                    if !queued[i] && !tasks.vb_blocked[i] {
                        tasks.vruntime[i] = v;
                        rq.enqueue(&tasks, TaskId(i));
                        queued[i] = true;
                    }
                }
                Op::Dequeue(i) => {
                    if queued[i] && !tasks.vb_blocked[i] {
                        rq.dequeue(&tasks, TaskId(i));
                        queued[i] = false;
                    }
                }
                Op::Park(i) => {
                    if queued[i] && !tasks.vb_blocked[i] {
                        let old = tasks.vruntime[i];
                        let tail = rq.next_vb_tail_vruntime();
                        tasks.vb_park(TaskId(i), tail);
                        rq.requeue(old, false, &tasks, TaskId(i));
                    }
                }
                Op::Unpark(i) => {
                    if queued[i] && tasks.vb_blocked[i] {
                        let old = tasks.vruntime[i];
                        tasks.vb_unpark(TaskId(i));
                        rq.requeue(old, true, &tasks, TaskId(i));
                    }
                }
                Op::Pick => {
                    // Interleave skip-flag churn with picks.
                    if let Some((i, on)) = skips.next().map(|(i, b)| (i, b == 1)) {
                        let was = tasks.bwd_skip[i];
                        tasks.bwd_skip[i] = on;
                        if was && !on {
                            rq.invalidate_pick_cache();
                        }
                    }
                    prop_assert_eq!(
                        rq.pick_next(&tasks),
                        rq.pick_next_scan(&tasks),
                        "cached pick diverged from ordered scan"
                    );
                    // A second pick immediately after exercises the
                    // cache-hit path against the same scan.
                    prop_assert_eq!(rq.pick_next(&tasks), rq.pick_next_scan(&tasks));
                }
            }
            prop_assert_eq!(
                board.get(),
                usize::from(rq.nr_schedulable() > 0),
                "waiter board out of sync"
            );
        }
    }

    /// pick_next always returns the schedulable task with the smallest
    /// vruntime (ignoring BWD skip flags, which these ops never set).
    #[test]
    fn pick_is_minimum_vruntime(
        entries in proptest::collection::btree_map(0usize..8, 0u64..1_000_000, 1..8)
    ) {
        let mut rq = CfsRq::new();
        let mut tasks = mk_tasks();
        for (&i, &v) in &entries {
            tasks.vruntime[i] = v;
            rq.enqueue(&tasks, TaskId(i));
        }
        let (tid, forced) = rq.pick_next(&tasks).expect("non-empty");
        prop_assert!(!forced);
        let min = entries.iter().map(|(&i, &v)| (v, i)).min().unwrap();
        prop_assert_eq!(tid.0, min.1);
    }

    /// min_vruntime never decreases, whatever happens.
    #[test]
    fn min_vruntime_is_monotone(ops in arb_ops()) {
        let mut rq = CfsRq::new();
        let mut tasks = mk_tasks();
        let mut queued = [false; 8];
        let mut last_min = rq.min_vruntime();
        for op in ops {
            match op {
                Op::Enqueue(i, v) => {
                    if !queued[i] {
                        tasks.vruntime[i] = v;
                        rq.enqueue(&tasks, TaskId(i));
                        queued[i] = true;
                    }
                }
                Op::Dequeue(i) => {
                    if queued[i] {
                        rq.dequeue(&tasks, TaskId(i));
                        queued[i] = false;
                    }
                }
                Op::Pick => {
                    rq.advance_min_vruntime(last_min + 100);
                }
                _ => {}
            }
            let m = rq.min_vruntime();
            prop_assert!(m >= last_min, "min_vruntime went backwards");
            last_min = m;
        }
    }
}
