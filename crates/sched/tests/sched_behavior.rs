//! Behavioural tests of the scheduler's placement, preemption inputs, and
//! slice computation.

use oversub_hw::{CpuId, MemModel, Topology};
use oversub_sched::{Pick, SchedParams, Scheduler, StopReason};
use oversub_simcore::SimTime;
use oversub_task::{Action, FnProgram, Task, TaskId, TaskState, TaskTable};

fn mk(topo: Topology, vb: bool) -> Scheduler {
    Scheduler::new(topo, SchedParams::default(), MemModel::default(), vb)
}

fn tasks(n: usize) -> TaskTable {
    let mut tt = TaskTable::new();
    for i in 0..n {
        tt.push(Task::new(
            TaskId(i),
            Box::new(FnProgram::new("nop", |_| Action::Exit)),
            CpuId(0),
        ));
    }
    tt
}

fn run_someone(s: &mut Scheduler, ts: &mut TaskTable, cpu: CpuId, now: SimTime) -> TaskId {
    let Pick::Run(t, _) = s.pick_next(ts, cpu) else {
        panic!("nothing runnable on {cpu:?}")
    };
    s.start(ts, cpu, t, now);
    t
}

#[test]
fn effective_vruntime_tracks_the_stint() {
    let mut s = mk(Topology::flat(1), false);
    let mut ts = tasks(1);
    s.enqueue_new(&mut ts, TaskId(0), CpuId(0), SimTime::ZERO);
    assert_eq!(
        s.curr_effective_vruntime(&ts, CpuId(0), SimTime::ZERO),
        None,
        "idle cpu has no effective vruntime"
    );
    run_someone(&mut s, &mut ts, CpuId(0), SimTime::ZERO);
    let at = SimTime::from_micros(500);
    let ev = s
        .curr_effective_vruntime(&ts, CpuId(0), at)
        .expect("running");
    assert_eq!(ev, 500_000, "nice-0 task accrues 1:1");
    // The stored vruntime is still stale until stop.
    assert_eq!(ts.vruntime[0], 0);
    s.stop_current(&mut ts, CpuId(0), at, StopReason::Preempted);
    assert_eq!(ts.vruntime[0], 500_000);
}

#[test]
fn wake_placement_prefers_last_cpu_then_least_loaded_same_node() {
    let topo = Topology::numa(2, 2, 1); // cpus 0,1 node0; 2,3 node1
    let mut s = mk(topo, false);
    let mut ts = tasks(4);
    // Busy up cpu0 with two tasks, cpu1 with one; cpu2/cpu3 idle.
    s.enqueue_new(&mut ts, TaskId(1), CpuId(0), SimTime::ZERO);
    s.enqueue_new(&mut ts, TaskId(2), CpuId(0), SimTime::ZERO);
    run_someone(&mut s, &mut ts, CpuId(0), SimTime::ZERO);
    s.enqueue_new(&mut ts, TaskId(3), CpuId(1), SimTime::ZERO);
    run_someone(&mut s, &mut ts, CpuId(1), SimTime::ZERO);

    // Task 0 slept on cpu0 (node 0). Its wake should land on an idle cpu;
    // with cpu0 busy, placement picks the least-loaded (cpu2 or cpu3),
    // breaking ties towards... home node has no idle cpu, so cross-node
    // placement happens and counts as a remote migration.
    ts.last_cpu[0] = CpuId(0);
    ts.state[0] = TaskState::Sleeping;
    ts.footprint_bytes[0] = 1 << 20;
    let out = s.vanilla_wake(&mut ts, TaskId(0), CpuId(1), SimTime::ZERO);
    assert!(out.cpu == CpuId(2) || out.cpu == CpuId(3));
    assert_eq!(out.migrated, Some(true), "cross-node placement");
    assert_eq!(ts.stats[0].migrations_remote, 1);
}

#[test]
fn wake_placement_respects_cpuset() {
    let mut s = mk(Topology::flat(4), false);
    let mut ts = tasks(1);
    ts.allowed[0] = 0b0010; // only cpu1
    ts.last_cpu[0] = CpuId(3);
    ts.state[0] = TaskState::Sleeping;
    // last_cpu (3) is idle but disallowed... note the fast path checks the
    // last cpu first; allowed() must veto it.
    let out = s.vanilla_wake(&mut ts, TaskId(0), CpuId(0), SimTime::ZERO);
    assert!(
        ts.allows(TaskId(0), out.cpu),
        "placed on disallowed cpu {:?}",
        out.cpu
    );
}

#[test]
fn slice_shrinks_with_runnable_depth_but_ignores_parked() {
    let mut s = mk(Topology::flat(1), true);
    let mut ts = tasks(4);
    for i in 0..4 {
        s.enqueue_new(&mut ts, TaskId(i), CpuId(0), SimTime::ZERO);
    }
    let t = run_someone(&mut s, &mut ts, CpuId(0), SimTime::ZERO);
    assert_eq!(s.slice_for(CpuId(0)), 750_000, "3ms/4 = 750us");
    // Park two of the queued tasks: schedulable depth drops to 2.
    let _ = t;
    for _ in 0..2 {
        let Pick::Run(x, _) = s.pick_next(&mut ts, CpuId(0)) else {
            panic!()
        };
        // Make it current briefly then virtually block it.
        s.stop_current(&mut ts, CpuId(0), SimTime::ZERO, StopReason::Preempted);
        s.start(&mut ts, CpuId(0), x, SimTime::ZERO);
        s.stop_current(&mut ts, CpuId(0), SimTime::ZERO, StopReason::VirtualBlock);
        let Pick::Run(y, _) = s.pick_next(&mut ts, CpuId(0)) else {
            panic!()
        };
        s.start(&mut ts, CpuId(0), y, SimTime::ZERO);
    }
    assert_eq!(s.cpus[0].rq.nr_vb_parked(), 2);
    // 2 schedulable (1 running + 1 queued): slice = 3ms/2.
    assert_eq!(s.slice_for(CpuId(0)), 1_500_000);
    // But the parked tasks still count as load.
    assert_eq!(s.cpus[0].load(), 4);
}

#[test]
fn same_task_restart_is_cheap() {
    let mut s = mk(Topology::flat(1), false);
    let mut ts = tasks(1);
    ts.footprint_bytes[0] = 4 << 20;
    s.enqueue_new(&mut ts, TaskId(0), CpuId(0), SimTime::ZERO);
    let t = run_someone(&mut s, &mut ts, CpuId(0), SimTime::ZERO);
    s.stop_current(
        &mut ts,
        CpuId(0),
        SimTime::from_micros(10),
        StopReason::Yielded,
    );
    // Restarting the same task: syscall-entry cost only, no cache refill.
    let Pick::Run(t2, _) = s.pick_next(&mut ts, CpuId(0)) else {
        panic!()
    };
    assert_eq!(t2, t);
    let cost = s.start(&mut ts, CpuId(0), t2, SimTime::from_micros(10));
    assert_eq!(cost, s.params.syscall_entry_ns);
}

#[test]
fn offline_cpus_are_never_wake_targets() {
    let mut s = mk(Topology::flat(4), false);
    s.set_online_count(2);
    let mut ts = tasks(1);
    ts.last_cpu[0] = CpuId(3); // offline now
    ts.state[0] = TaskState::Sleeping;
    let out = s.vanilla_wake(&mut ts, TaskId(0), CpuId(0), SimTime::ZERO);
    assert!(out.cpu.0 < 2, "woken onto offline cpu {:?}", out.cpu);
    assert_eq!(s.num_online(), 2);
    assert!(!s.is_online(CpuId(3)));
}

#[test]
fn bwd_skip_survives_until_others_ran_and_is_counted() {
    let mut s = mk(Topology::flat(1), false);
    let mut ts = tasks(3);
    for i in 0..3 {
        s.enqueue_new(&mut ts, TaskId(i), CpuId(0), SimTime::ZERO);
    }
    let spinner = run_someone(&mut s, &mut ts, CpuId(0), SimTime::ZERO);
    s.bwd_mark_skip(&mut ts, CpuId(0), spinner);
    assert_eq!(ts.stats[spinner.0].bwd_deschedules, 1);
    s.stop_current(&mut ts, CpuId(0), SimTime::ZERO, StopReason::Preempted);
    // The next two picks must be the other two tasks.
    let mut seen = Vec::new();
    for k in 0..2 {
        let Pick::Run(x, forced) = s.pick_next(&mut ts, CpuId(0)) else {
            panic!()
        };
        assert!(!forced);
        assert_ne!(x, spinner, "skip violated at pick {k}");
        seen.push(x);
        s.start(&mut ts, CpuId(0), x, SimTime::from_micros(k as u64 * 10));
        s.stop_current(
            &mut ts,
            CpuId(0),
            SimTime::from_micros(k as u64 * 10 + 5),
            StopReason::Preempted,
        );
    }
    assert_ne!(seen[0], seen[1]);
    // Now the spinner is eligible again.
    let Pick::Run(x, _) = s.pick_next(&mut ts, CpuId(0)) else {
        panic!()
    };
    assert_eq!(x, spinner);
    assert!(!ts.bwd_skip[spinner.0], "flag cleared on release");
}
