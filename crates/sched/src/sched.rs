//! The CFS-like scheduler with virtual-blocking and BWD hooks.
//!
//! The scheduler is a passive state machine: the simulation engine calls
//! into it at event times. Methods return the *costs* of kernel operations
//! (e.g. how long a `try_to_wake_up` keeps the waker busy) so that the
//! engine can charge them to the right CPU's timeline.
//!
//! Task state lives in the struct-of-arrays [`TaskTable`]; every method
//! indexes the columns it needs instead of chasing per-task structs.

use crate::cpu::CpuState;
use crate::params::SchedParams;
use crate::rq::VB_TAIL_BASE;
use oversub_hw::{CpuId, MemModel, Topology};
use oversub_simcore::SimTime;
use oversub_task::{TaskId, TaskState, TaskTable};
use std::cell::Cell;
use std::rc::Rc;

/// What `pick_next` decided for a CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pick {
    /// Run this task. The flag is true if a BWD skip had to be overridden.
    Run(TaskId, bool),
    /// Every queued task is VB-parked: briefly run this one to let it check
    /// its `thread_state` flag (the paper's "threads take turns to briefly
    /// run" behaviour).
    VbPoll(TaskId),
    /// Nothing to do.
    Idle,
}

/// Result of a vanilla (sleep-based) wakeup.
#[derive(Clone, Copy, Debug)]
pub struct WakeOutcome {
    /// CPU the task was placed on.
    pub cpu: CpuId,
    /// Nanoseconds the *waker* spends performing the wakeup (core
    /// selection, runqueue lock, enqueue, preemption check).
    pub cost_ns: u64,
    /// Whether placement moved the task off its previous CPU, and if so
    /// whether it crossed a NUMA node.
    pub migrated: Option<bool>,
    /// The chosen CPU should preempt its current task for the woken one.
    pub preempt: bool,
}

/// Why a running task is leaving the CPU.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// Time slice expired or preempted: back on the runqueue (involuntary).
    Preempted,
    /// Voluntary yield: back on the runqueue.
    Yielded,
    /// Going to sleep (vanilla block): off the runqueue.
    Sleep,
    /// Virtually blocking: parked at the runqueue tail.
    VirtualBlock,
    /// Exited.
    Exit,
}

/// A migration performed by the load balancer or wake placement.
#[derive(Clone, Copy, Debug)]
pub struct MigrationEvent {
    /// Migrated task.
    pub task: TaskId,
    /// Source CPU.
    pub from: CpuId,
    /// Destination CPU.
    pub to: CpuId,
    /// True if source and destination are on different NUMA nodes.
    pub cross_node: bool,
}

/// The machine-wide scheduler state.
pub struct Scheduler {
    /// Per-CPU state.
    pub cpus: Vec<CpuState>,
    /// Machine layout.
    pub topo: Topology,
    /// Tunables.
    pub params: SchedParams,
    /// Memory model used to price migration / pollution penalties.
    pub mem: MemModel,
    /// Whether virtual blocking is enabled (the mechanism can also
    /// auto-disable per-futex when not oversubscribed; see `ksync`).
    pub vb_enabled: bool,
    /// Penalties waiting to be charged when a task next runs
    /// (migration refill cost), indexed by task.
    pending_penalty: Vec<u64>,
    /// Online mask: offline CPUs are never picked as wake or balance
    /// destinations (CPU elasticity).
    pub online: Vec<bool>,
    /// Machine-wide count of runqueues with schedulable waiters (shared
    /// with every [`crate::rq::CfsRq`]): the idle balancer's O(1)
    /// "anything to steal?" check.
    pub(crate) waiter_board: Rc<Cell<usize>>,
    /// Active-core bitset: bit `i` of word `i / 64` is set exactly when
    /// CPU `i` has a current task. Maintained on the only two transitions
    /// (`start`, `stop_current`), so "is this core running anything" and
    /// "how many cores are busy" are O(1)/O(words) without striding over
    /// `cpus` — the basis of the O(active) mechanism-timer dispatch.
    active_mask: Vec<u64>,
    /// Reference (pre-overhaul) mode: uncached picks and full balancer
    /// scans. See [`Scheduler::set_reference_mode`].
    pub(crate) reference: bool,
    /// BWD skip flags released by round expiry since the last drain
    /// (consumed via [`Scheduler::take_skips_released`] by the BWD
    /// mechanism's `on_pick` hook for its `skips_cleared` counter).
    skips_released: u64,
    /// True while the sharded engine has a lookahead window open. Between
    /// window sync points the runqueues and the waiter board are owned by
    /// the shards' frozen snapshot: any runqueue mutation here would race
    /// the windows' quiet-tick classification, so the central mutators
    /// debug-assert the flag is clear (see `assert_window_closed`).
    parallel_window: bool,
}

impl Scheduler {
    /// Build a scheduler for `topo`.
    pub fn new(topo: Topology, params: SchedParams, mem: MemModel, vb_enabled: bool) -> Self {
        let waiter_board = Rc::new(Cell::new(0));
        let cpus: Vec<CpuState> = (0..topo.num_cpus())
            .map(|_| {
                let mut c = CpuState::new(params.rq_lock);
                c.rq.attach_waiter_board(Rc::clone(&waiter_board));
                c
            })
            .collect();
        let online = vec![true; topo.num_cpus()];
        let active_mask = vec![0u64; topo.num_cpus().div_ceil(64)];
        Scheduler {
            cpus,
            topo,
            params,
            mem,
            vb_enabled,
            pending_penalty: Vec::new(),
            online,
            waiter_board,
            active_mask,
            reference: false,
            skips_released: 0,
            parallel_window: false,
        }
    }

    /// Mark a sharded-engine lookahead window open (`on = true`) or
    /// closed. While open, runqueue/waiter-board mutators debug-assert
    /// they are not called: windows execute only quiet ticks, which by
    /// contract never touch scheduler queues.
    pub fn set_parallel_window(&mut self, on: bool) {
        self.parallel_window = on;
    }

    /// Debug-mode ownership assert for the sharded engine: runqueue and
    /// waiter-board mutations are forbidden while a lookahead window is
    /// open (they would invalidate the windows' frozen classification).
    #[inline]
    fn assert_window_closed(&self) {
        debug_assert!(
            !self.parallel_window,
            "scheduler mutated inside an open lookahead window"
        );
    }

    /// Current waiter-board reading: number of runqueues with at least
    /// one schedulable task, O(1). The sharded engine freezes this into
    /// each window's context (board = 0 is what makes periodic-balance
    /// ticks quiet).
    pub fn waiter_board_count(&self) -> usize {
        self.waiter_board.get()
    }

    /// Drain the count of skip flags released by round expiry since the
    /// last call.
    pub fn take_skips_released(&mut self) -> u64 {
        std::mem::take(&mut self.skips_released)
    }

    /// True when `cpu` currently runs a task (O(1) bitset read; equal to
    /// `self.cpus[cpu.0].current.is_some()` by construction).
    #[inline]
    pub fn is_active(&self, cpu: CpuId) -> bool {
        self.active_mask[cpu.0 >> 6] & (1u64 << (cpu.0 & 63)) != 0
    }

    /// Number of CPUs currently running a task, in O(words) popcounts.
    #[inline]
    pub fn active_count(&self) -> usize {
        self.active_mask
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }

    #[inline]
    fn set_active(&mut self, cpu: CpuId, on: bool) {
        let bit = 1u64 << (cpu.0 & 63);
        if on {
            self.active_mask[cpu.0 >> 6] |= bit;
        } else {
            self.active_mask[cpu.0 >> 6] &= !bit;
        }
    }

    /// Cross-check the O(1) waiter board against the per-runqueue truth:
    /// the board must equal the number of runqueues with at least one
    /// schedulable task. Returns `None` when consistent, or a description
    /// of the mismatch for the watchdog's diagnostics.
    pub fn audit_waiter_board(&self) -> Option<String> {
        let actual = self
            .cpus
            .iter()
            .filter(|c| c.rq.nr_schedulable() > 0)
            .count();
        let board = self.waiter_board.get();
        (board != actual).then(|| {
            format!("waiter board reads {board} but {actual} runqueues have schedulable tasks")
        })
    }

    /// Switch the scheduler to its pre-overhaul reference internals:
    /// every runqueue scans instead of using its pick cache, and the
    /// balancer skips its O(1) waiter-board fast paths. Behaviour is
    /// bit-identical either way (the golden determinism test proves it);
    /// this exists as the baseline for throughput comparisons.
    pub fn set_reference_mode(&mut self, on: bool) {
        self.reference = on;
        for c in &self.cpus {
            c.rq.set_scan_mode(on);
        }
    }

    /// Bring exactly the first `n` CPUs online (CPU elasticity). The caller
    /// is responsible for draining newly-offline runqueues.
    pub fn set_online_count(&mut self, n: usize) {
        for (i, o) in self.online.iter_mut().enumerate() {
            *o = i < n;
        }
    }

    /// Number of online CPUs.
    pub fn num_online(&self) -> usize {
        self.online.iter().filter(|&&o| o).count()
    }

    /// Whether `cpu` is online.
    pub fn is_online(&self, cpu: CpuId) -> bool {
        self.online[cpu.0]
    }

    /// Ensure the pending-penalty table covers `tid`.
    fn ensure_task(&mut self, tid: TaskId) {
        if self.pending_penalty.len() <= tid.0 {
            self.pending_penalty.resize(tid.0 + 1, 0);
        }
    }

    /// Add a pending one-off penalty (cache refill after migration).
    pub fn add_penalty(&mut self, tid: TaskId, ns: u64) {
        self.ensure_task(tid);
        self.pending_penalty[tid.0] += ns;
    }

    /// Take (and clear) the pending penalty for a task.
    pub fn take_penalty(&mut self, tid: TaskId) -> u64 {
        self.ensure_task(tid);
        std::mem::take(&mut self.pending_penalty[tid.0])
    }

    /// Enqueue a brand-new runnable task on `cpu`.
    pub fn enqueue_new(&mut self, tasks: &mut TaskTable, tid: TaskId, cpu: CpuId, now: SimTime) {
        self.assert_window_closed();
        self.ensure_task(tid);
        let rq_min = self.cpus[cpu.0].rq.min_vruntime();
        tasks.state[tid.0] = TaskState::Runnable;
        tasks.last_cpu[tid.0] = cpu;
        tasks.vruntime[tid.0] = tasks.vruntime[tid.0].max(rq_min);
        tasks.runnable_since[tid.0] = now;
        self.cpus[cpu.0].rq.enqueue(tasks, tid);
    }

    /// Time slice for the task currently on `cpu`.
    pub fn slice_for(&self, cpu: CpuId) -> u64 {
        self.params.slice_ns(self.cpus[cpu.0].nr_for_slice())
    }

    /// SMT throughput factor for work on `cpu`: 1.0 when the sibling
    /// hardware thread is idle, else each thread runs at 65 % speed
    /// (a typical combined SMT speedup of 1.3x).
    pub fn smt_factor(&self, cpu: CpuId) -> f64 {
        if self.topo.smt() == 1 {
            return 1.0;
        }
        let busy_sibling = self
            .topo
            .cpu_ids()
            .any(|o| self.topo.siblings(cpu, o) && self.cpus[o.0].current.is_some());
        if busy_sibling {
            0.65
        } else {
            1.0
        }
    }

    /// Pick what `cpu` should do next.
    pub fn pick_next(&mut self, tasks: &mut TaskTable, cpu: CpuId) -> Pick {
        // Expire BWD skip flags whose release round has come: every other
        // schedulable task has been picked at least once since the flag was
        // set.
        let round = self.cpus[cpu.0].pick_round;
        let c = &mut self.cpus[cpu.0];
        if !c.skip_release.is_empty() {
            let mut released = false;
            let mut released_count = 0u64;
            c.skip_release.retain(|&tid, &mut r| {
                if round >= r {
                    tasks.bwd_skip[tid.0] = false;
                    released = true;
                    released_count += 1;
                    false
                } else {
                    true
                }
            });
            self.skips_released += released_count;
            if released {
                // Skip expiry changes in-tree eligibility without touching
                // the runqueue, so the cached pick may not be leftmost.
                c.rq.invalidate_pick_cache();
            }
        }
        match self.cpus[cpu.0].rq.pick_next(tasks) {
            Some((tid, forced)) => Pick::Run(tid, forced),
            None => match self.cpus[cpu.0].rq.first_vb_parked(tasks) {
                Some(tid) => Pick::VbPoll(tid),
                None => Pick::Idle,
            },
        }
    }

    /// Start running `tid` on `cpu` at `now`. Returns the one-off cost of
    /// the switch: direct context-switch cost plus any cache penalty
    /// (pollution refill if another task ran here since, pending migration
    /// refill).
    pub fn start(&mut self, tasks: &mut TaskTable, cpu: CpuId, tid: TaskId, now: SimTime) -> u64 {
        self.ensure_task(tid);
        let c = &mut self.cpus[cpu.0];
        debug_assert!(c.current.is_none(), "cpu {cpu:?} already running");
        c.pick_round += 1;
        c.skip_release.remove(&tid);

        let same_as_last = c.last_ran == Some(tid);
        let prev_footprint = c
            .last_ran
            .map(|p| {
                if p == tid {
                    0
                } else {
                    tasks.footprint_bytes[p.0]
                }
            })
            .unwrap_or(0);
        debug_assert!(
            tasks.schedulable(tid),
            "starting unschedulable task {tid:?}"
        );
        tasks.bwd_skip[tid.0] = false;
        tasks.note_run_start(tid, now);
        tasks.state[tid.0] = TaskState::Running;
        c.rq.dequeue(tasks, tid);
        c.current = Some(tid);
        c.curr_since = now;

        // Resuming the task that just ran (e.g. a lone yielder) skips the
        // register/address-space work: only the mode switch is paid.
        let mut cost = if same_as_last {
            self.params.syscall_entry_ns
        } else {
            self.params.ctx_switch_ns
        };
        let footprint = tasks.footprint_bytes[tid.0];
        if !same_as_last && footprint > 0 {
            cost +=
                self.mem
                    .switch_penalty_ns(footprint, prev_footprint, tasks.random_access[tid.0]);
        }
        if tasks.last_cpu[tid.0] != cpu {
            tasks.last_cpu[tid.0] = cpu;
        }
        self.cpus[cpu.0].last_ran = Some(tid);
        self.set_active(cpu, true);
        cost + self.take_penalty(tid)
    }

    /// Stop the task currently running on `cpu` at `now`, charging its
    /// vruntime for the stint and applying `reason` semantics. Returns
    /// `None` (and does nothing) if the CPU was idle — a caller bug, but
    /// one the simulation survives instead of tearing down.
    pub fn stop_current(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        now: SimTime,
        reason: StopReason,
    ) -> Option<TaskId> {
        self.assert_window_closed();
        let c = &mut self.cpus[cpu.0];
        let Some(tid) = c.current.take() else {
            debug_assert!(false, "stop_current on idle cpu {}", cpu.0);
            return None;
        };
        let stint = now.saturating_since(c.curr_since);
        let vruntime =
            tasks.vruntime[tid.0].saturating_add(stint * 1024 / tasks.weight[tid.0].max(1) as u64);
        tasks.vruntime[tid.0] = vruntime;
        c.rq.advance_min_vruntime(vruntime);

        match reason {
            StopReason::Preempted => {
                tasks.state[tid.0] = TaskState::Runnable;
                tasks.runnable_since[tid.0] = now;
                tasks.stats[tid.0].nivcsw += 1;
                c.rq.enqueue(tasks, tid);
                c.time.preemptions += 1;
            }
            StopReason::Yielded => {
                tasks.state[tid.0] = TaskState::Runnable;
                tasks.runnable_since[tid.0] = now;
                tasks.stats[tid.0].nvcsw += 1;
                c.rq.enqueue(tasks, tid);
            }
            StopReason::Sleep => {
                tasks.state[tid.0] = TaskState::Sleeping;
                tasks.stats[tid.0].nvcsw += 1;
            }
            StopReason::VirtualBlock => {
                tasks.state[tid.0] = TaskState::Runnable;
                tasks.stats[tid.0].nvcsw += 1;
                let tail = c.rq.next_vb_tail_vruntime();
                tasks.vb_park(tid, tail);
                c.rq.enqueue(tasks, tid);
            }
            StopReason::Exit => {
                tasks.state[tid.0] = TaskState::Exited;
            }
        }
        c.time.context_switches += 1;
        self.set_active(cpu, false);
        Some(tid)
    }

    /// Select the CPU a waking task should run on (vanilla CFS
    /// `select_task_rq_fair` flavour) and the scan cost.
    fn select_cpu(&self, tasks: &TaskTable, tid: TaskId, waker_cpu: CpuId) -> (CpuId, u64) {
        if let Some(p) = tasks.pinned[tid.0] {
            return (p, self.params.wakeup_fixed_ns);
        }
        let scan_cost = self.params.wakeup_fixed_ns
            + self.params.wakeup_scan_per_cpu_ns * self.topo.num_cpus() as u64;

        // Fast path: previous CPU idle (and still online and allowed).
        let last = tasks.last_cpu[tid.0];
        if self.online[last.0] && tasks.allows(tid, last) && self.cpus[last.0].is_idle() {
            return (last, scan_cost);
        }
        // Otherwise pick the least-loaded CPU, preferring the task's node,
        // then the waker's node, then lowest index. Never fall back to an
        // offline or disallowed CPU: if the cpuset excludes every online
        // CPU, place on the first online one (affinity is broken rather
        // than stranding the task, as hotplug does).
        let mut best = self
            .topo
            .cpu_ids()
            .find(|c| self.online[c.0])
            .unwrap_or(last);
        let mut best_key = (usize::MAX, usize::MAX, usize::MAX);
        let home = self.topo.node_of(last);
        let waker_node = self.topo.node_of(waker_cpu);
        for c in self.topo.cpu_ids() {
            if !self.online[c.0] || !tasks.allows(tid, c) {
                continue;
            }
            let load = self.cpus[c.0].load();
            let node = self.topo.node_of(c);
            let node_pref = if node == home {
                0
            } else if node == waker_node {
                1
            } else {
                2
            };
            let key = (load, node_pref, c.0);
            if key < best_key {
                best_key = key;
                best = c;
            }
        }
        (best, scan_cost)
    }

    /// Vanilla wakeup: place a sleeping task on a CPU, paying the full
    /// `try_to_wake_up` path. The waker runs this code.
    pub fn vanilla_wake(
        &mut self,
        tasks: &mut TaskTable,
        tid: TaskId,
        waker_cpu: CpuId,
        now: SimTime,
    ) -> WakeOutcome {
        self.assert_window_closed();
        self.ensure_task(tid);
        debug_assert_eq!(tasks.state[tid.0], TaskState::Sleeping);
        let (cpu, scan_cost) = self.select_cpu(tasks, tid, waker_cpu);

        // Runqueue lock of the destination (serializes bulk wakeups).
        let grant = self.cpus[cpu.0]
            .rq_lock
            .acquire(now + scan_cost, self.params.rq_lock_hold_ns);
        let cost_ns = grant.end - now;

        let last = tasks.last_cpu[tid.0];
        let migrated = if cpu != last {
            let cross = !self.topo.same_node(cpu, last);
            if cross {
                tasks.stats[tid.0].migrations_remote += 1;
            } else {
                tasks.stats[tid.0].migrations_local += 1;
            }
            let refill = self
                .mem
                .migration_refill_ns(tasks.footprint_bytes[tid.0], cross);
            self.add_penalty(tid, refill);
            Some(cross)
        } else {
            None
        };

        // Sleeper credit placement.
        let rq_min = self.cpus[cpu.0].rq.min_vruntime();
        if self.params.sleeper_credit {
            let floor = rq_min.saturating_sub(self.params.target_latency_ns / 2);
            tasks.vruntime[tid.0] = tasks.vruntime[tid.0].max(floor);
        } else {
            tasks.vruntime[tid.0] = tasks.vruntime[tid.0].max(rq_min);
        }
        tasks.state[tid.0] = TaskState::Runnable;
        tasks.runnable_since[tid.0] = grant.end;
        tasks.note_wake_request(tid, now);
        self.cpus[cpu.0].rq.enqueue(tasks, tid);

        // Wakeup preemption test against the current task on `cpu`
        // (using its effective, stint-adjusted vruntime).
        let preempt = match self.curr_effective_vruntime(tasks, cpu, grant.end) {
            Some(cv) => tasks.vruntime[tid.0] + self.params.wakeup_granularity_ns < cv,
            None => true,
        };
        WakeOutcome {
            cpu,
            cost_ns,
            migrated,
            preempt,
        }
    }

    /// Virtual-blocking wake: clear `thread_state`, restore the true
    /// vruntime, and reposition the task in its (unchanged) runqueue.
    /// Returns `(cpu, cost_ns, preempt)`.
    pub fn vb_wake(
        &mut self,
        tasks: &mut TaskTable,
        tid: TaskId,
        now: SimTime,
    ) -> (CpuId, u64, bool) {
        self.assert_window_closed();
        let cpu = tasks.last_cpu[tid.0];
        let rq_min = self.cpus[cpu.0].rq.min_vruntime();
        debug_assert!(
            tasks.vb_blocked[tid.0],
            "vb_wake on non-parked task {tid:?}"
        );
        let old_vr = tasks.vruntime[tid.0];
        tasks.vb_unpark(tid);
        // Floor the restored vruntime so long-parked tasks do not lag the
        // queue (and get a sleeper-like credit, prioritizing their wake).
        let floor = rq_min.saturating_sub(self.params.target_latency_ns / 2);
        tasks.vruntime[tid.0] = tasks.vruntime[tid.0].max(floor);
        tasks.runnable_since[tid.0] = now;
        tasks.note_wake_request(tid, now);
        self.cpus[cpu.0].rq.requeue(old_vr, true, tasks, tid);

        // VB wakes always request preemption: the paper schedules threads
        // waking from virtual blocking immediately, like real sleepers.
        (cpu, self.params.vb_wake_ns, true)
    }

    /// Set the BWD skip flag on the task running on `cpu` — it will not be
    /// picked again until every other schedulable task there has run once.
    pub fn bwd_mark_skip(&mut self, tasks: &mut TaskTable, cpu: CpuId, tid: TaskId) {
        tasks.bwd_skip[tid.0] = true;
        tasks.stats[tid.0].bwd_deschedules += 1;
        let others = self.cpus[cpu.0].rq.nr_schedulable().max(1) as u64;
        let release = self.cpus[cpu.0].pick_round + others;
        self.cpus[cpu.0].skip_release.insert(tid, release);
    }

    /// The effective vruntime of the task currently running on `cpu` at
    /// `now`: its stored vruntime plus the elapsed stint (vruntime is only
    /// materialized at stop). Preemption decisions must use this, not the
    /// stale stored value.
    pub fn curr_effective_vruntime(
        &self,
        tasks: &TaskTable,
        cpu: CpuId,
        now: SimTime,
    ) -> Option<u64> {
        let c = &self.cpus[cpu.0];
        let curr = c.current?;
        let stint = now.saturating_since(c.curr_since);
        Some(
            tasks.vruntime[curr.0]
                .saturating_add(stint * 1024 / tasks.weight[curr.0].max(1) as u64),
        )
    }

    /// Total number of schedulable tasks across all CPUs (used by the VB
    /// auto-disable check in `ksync`).
    pub fn total_schedulable(&self) -> usize {
        self.cpus
            .iter()
            .map(|c| c.rq.nr_schedulable() + usize::from(c.current.is_some()))
            .sum()
    }

    /// The vruntime region boundary for parked tasks (exposed for tests).
    pub fn vb_tail_base() -> u64 {
        VB_TAIL_BASE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SchedParams;
    use oversub_hw::{MemModel, Topology};
    use oversub_task::{Action, FnProgram, Task};

    fn mk_sched(cpus: usize) -> Scheduler {
        Scheduler::new(
            Topology::flat(cpus),
            SchedParams::default(),
            MemModel::default(),
            true,
        )
    }

    fn mk_tasks(n: usize) -> TaskTable {
        let mut tt = TaskTable::new();
        for i in 0..n {
            tt.push(Task::new(
                TaskId(i),
                Box::new(FnProgram::new("nop", |_| Action::Exit)),
                CpuId(0),
            ));
        }
        tt
    }

    #[test]
    fn enqueue_pick_start_stop_cycle() {
        let mut s = mk_sched(1);
        let mut tasks = mk_tasks(2);
        let now = SimTime::ZERO;
        s.enqueue_new(&mut tasks, TaskId(0), CpuId(0), now);
        s.enqueue_new(&mut tasks, TaskId(1), CpuId(0), now);

        let pick = s.pick_next(&mut tasks, CpuId(0));
        let Pick::Run(t0, false) = pick else {
            panic!("expected run, got {pick:?}")
        };
        let cost = s.start(&mut tasks, CpuId(0), t0, now);
        assert!(cost >= s.params.ctx_switch_ns);
        assert_eq!(tasks.state[t0.0], TaskState::Running);
        assert_eq!(s.cpus[0].current, Some(t0));
        assert!(s.is_active(CpuId(0)));
        assert_eq!(s.active_count(), 1);

        // Run 1ms then get preempted; vruntime advances.
        let later = SimTime::from_millis(1);
        let stopped = s.stop_current(&mut tasks, CpuId(0), later, StopReason::Preempted);
        assert_eq!(stopped, Some(t0));
        assert_eq!(tasks.vruntime[t0.0], 1_000_000);
        assert_eq!(tasks.stats[t0.0].nivcsw, 1);
        assert!(!s.is_active(CpuId(0)));
        assert_eq!(s.active_count(), 0);

        // Next pick is the other task (vruntime 0).
        let Pick::Run(t1, _) = s.pick_next(&mut tasks, CpuId(0)) else {
            panic!()
        };
        assert_ne!(t1, t0);
    }

    #[test]
    fn vanilla_wake_prefers_idle_last_cpu() {
        let mut s = mk_sched(2);
        let mut tasks = mk_tasks(1);
        tasks.last_cpu[0] = CpuId(1);
        tasks.state[0] = TaskState::Sleeping;
        s.ensure_task(TaskId(0));
        let out = s.vanilla_wake(&mut tasks, TaskId(0), CpuId(0), SimTime::ZERO);
        assert_eq!(out.cpu, CpuId(1));
        assert!(out.migrated.is_none());
        assert!(out.preempt, "idle cpu should 'preempt' into running");
        assert!(out.cost_ns > 0);
        assert_eq!(tasks.state[0], TaskState::Runnable);
    }

    #[test]
    fn vanilla_wake_migrates_when_last_cpu_busy() {
        let mut s = mk_sched(2);
        let mut tasks = mk_tasks(3);
        // Make cpu0 busy with task1 running and task2 queued.
        s.enqueue_new(&mut tasks, TaskId(1), CpuId(0), SimTime::ZERO);
        s.enqueue_new(&mut tasks, TaskId(2), CpuId(0), SimTime::ZERO);
        let Pick::Run(t, _) = s.pick_next(&mut tasks, CpuId(0)) else {
            panic!()
        };
        s.start(&mut tasks, CpuId(0), t, SimTime::ZERO);
        // task0 slept on cpu0; wake should move it to idle cpu1.
        tasks.last_cpu[0] = CpuId(0);
        tasks.state[0] = TaskState::Sleeping;
        tasks.footprint_bytes[0] = 1 << 20;
        let out = s.vanilla_wake(&mut tasks, TaskId(0), CpuId(0), SimTime::ZERO);
        assert_eq!(out.cpu, CpuId(1));
        assert_eq!(out.migrated, Some(false));
        assert_eq!(tasks.stats[0].migrations_local, 1);
        // Migration penalty is pending.
        assert!(s.take_penalty(TaskId(0)) > 0);
    }

    #[test]
    fn bulk_vanilla_wakes_serialize_on_rq_lock() {
        let mut s = mk_sched(1);
        let n = 8;
        let mut tasks = mk_tasks(n);
        for i in 0..n {
            tasks.state[i] = TaskState::Sleeping;
        }
        let now = SimTime::ZERO;
        let costs: Vec<u64> = (0..n)
            .map(|i| s.vanilla_wake(&mut tasks, TaskId(i), CpuId(0), now).cost_ns)
            .collect();
        // Later wakes wait behind earlier rq-lock holders: cost grows.
        assert!(
            costs[n - 1] > costs[0],
            "serialized wakes should cost more: {costs:?}"
        );
    }

    #[test]
    fn vb_park_and_wake_round_trip() {
        let mut s = mk_sched(1);
        let mut tasks = mk_tasks(2);
        let now = SimTime::ZERO;
        s.enqueue_new(&mut tasks, TaskId(0), CpuId(0), now);
        s.enqueue_new(&mut tasks, TaskId(1), CpuId(0), now);
        let Pick::Run(t, _) = s.pick_next(&mut tasks, CpuId(0)) else {
            panic!()
        };
        s.start(&mut tasks, CpuId(0), t, now);
        let later = SimTime::from_micros(100);
        s.stop_current(&mut tasks, CpuId(0), later, StopReason::VirtualBlock);
        assert!(tasks.vb_blocked[t.0]);
        assert_eq!(s.cpus[0].rq.nr_vb_parked(), 1);
        // The parked task is skipped; the other runs.
        let Pick::Run(other, _) = s.pick_next(&mut tasks, CpuId(0)) else {
            panic!()
        };
        assert_ne!(other, t);
        // Wake it: cheap, no migration, stays on cpu0.
        let (cpu, cost, _preempt) = s.vb_wake(&mut tasks, t, later);
        assert_eq!(cpu, CpuId(0));
        assert_eq!(cost, s.params.vb_wake_ns);
        assert!(!tasks.vb_blocked[t.0]);
        assert_eq!(tasks.stats[t.0].migrations_local, 0);
        assert_eq!(s.cpus[0].rq.nr_vb_parked(), 0);
        assert_eq!(s.cpus[0].rq.nr_schedulable(), 2);
    }

    #[test]
    fn vb_poll_when_everyone_parked() {
        let mut s = mk_sched(1);
        let mut tasks = mk_tasks(1);
        let now = SimTime::ZERO;
        s.enqueue_new(&mut tasks, TaskId(0), CpuId(0), now);
        let Pick::Run(t, _) = s.pick_next(&mut tasks, CpuId(0)) else {
            panic!()
        };
        s.start(&mut tasks, CpuId(0), t, now);
        s.stop_current(&mut tasks, CpuId(0), now, StopReason::VirtualBlock);
        assert_eq!(s.pick_next(&mut tasks, CpuId(0)), Pick::VbPoll(t));
    }

    #[test]
    fn bwd_skip_is_released_after_others_run() {
        let mut s = mk_sched(1);
        let mut tasks = mk_tasks(2);
        let now = SimTime::ZERO;
        s.enqueue_new(&mut tasks, TaskId(0), CpuId(0), now);
        s.enqueue_new(&mut tasks, TaskId(1), CpuId(0), now);
        let Pick::Run(spinner, _) = s.pick_next(&mut tasks, CpuId(0)) else {
            panic!()
        };
        s.start(&mut tasks, CpuId(0), spinner, now);
        // BWD fires on the spinner.
        s.bwd_mark_skip(&mut tasks, CpuId(0), spinner);
        s.stop_current(&mut tasks, CpuId(0), now, StopReason::Preempted);
        // Other task must be picked despite higher/equal vruntime.
        let Pick::Run(other, false) = s.pick_next(&mut tasks, CpuId(0)) else {
            panic!()
        };
        assert_ne!(other, spinner);
        s.start(&mut tasks, CpuId(0), other, now);
        s.stop_current(
            &mut tasks,
            CpuId(0),
            SimTime::from_micros(10),
            StopReason::Preempted,
        );
        // After the other ran, the spinner is pickable again (flag cleared
        // on start).
        let pick = s.pick_next(&mut tasks, CpuId(0));
        match pick {
            Pick::Run(t, _) => {
                s.start(&mut tasks, CpuId(0), t, SimTime::from_micros(10));
                assert!(!tasks.bwd_skip[t.0] || t != spinner);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn exit_removes_task() {
        let mut s = mk_sched(1);
        let mut tasks = mk_tasks(1);
        s.enqueue_new(&mut tasks, TaskId(0), CpuId(0), SimTime::ZERO);
        let Pick::Run(t, _) = s.pick_next(&mut tasks, CpuId(0)) else {
            panic!()
        };
        s.start(&mut tasks, CpuId(0), t, SimTime::ZERO);
        s.stop_current(&mut tasks, CpuId(0), SimTime::ZERO, StopReason::Exit);
        assert_eq!(tasks.state[0], TaskState::Exited);
        assert_eq!(s.pick_next(&mut tasks, CpuId(0)), Pick::Idle);
    }

    #[test]
    fn pinned_task_wakes_on_pinned_cpu() {
        let mut s = mk_sched(4);
        let mut tasks = mk_tasks(1);
        tasks.pinned[0] = Some(CpuId(3));
        tasks.last_cpu[0] = CpuId(0);
        tasks.state[0] = TaskState::Sleeping;
        s.ensure_task(TaskId(0));
        let out = s.vanilla_wake(&mut tasks, TaskId(0), CpuId(1), SimTime::ZERO);
        assert_eq!(out.cpu, CpuId(3));
    }

    #[test]
    fn smt_factor_reflects_sibling_activity() {
        let topo = Topology::paper_8_hyperthreads();
        let mut s = Scheduler::new(topo, SchedParams::default(), MemModel::default(), false);
        let mut tasks = mk_tasks(1);
        assert_eq!(s.smt_factor(CpuId(0)), 1.0);
        // Busy sibling on cpu1 slows cpu0.
        s.enqueue_new(&mut tasks, TaskId(0), CpuId(1), SimTime::ZERO);
        let Pick::Run(t, _) = s.pick_next(&mut tasks, CpuId(1)) else {
            panic!()
        };
        s.start(&mut tasks, CpuId(1), t, SimTime::ZERO);
        assert!(s.smt_factor(CpuId(0)) < 1.0);
        assert!(s.smt_factor(CpuId(2)) == 1.0);
    }
}
