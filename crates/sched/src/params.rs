//! Scheduler model parameters.
//!
//! Defaults reproduce the paper's platform: Linux 5.1 CFS with a 3 ms
//! target latency, 750 µs minimum granularity, and a measured direct
//! context-switch cost of 1.5 µs.

use oversub_simcore::{KernelLockParams, MICROS, MILLIS};

/// Tunables of the CFS model and of the vanilla wakeup path.
#[derive(Clone, Debug)]
pub struct SchedParams {
    /// CFS `sched_latency`: the window in which every runnable task should
    /// run once ("regular time slice is 3 ms" in the paper's terms).
    pub target_latency_ns: u64,
    /// CFS `sched_min_granularity`: minimum slice before preemption.
    pub min_granularity_ns: u64,
    /// CFS `sched_wakeup_granularity`: vruntime headroom a waking task
    /// needs to preempt the current one.
    pub wakeup_granularity_ns: u64,
    /// Direct cost of one context switch (mode switch + runqueue ops +
    /// register state) — the paper measures 1.5 µs.
    pub ctx_switch_ns: u64,
    /// Cost of entering the kernel for a blocking syscall (trap + path to
    /// schedule()).
    pub syscall_entry_ns: u64,
    /// Fixed cost of `try_to_wake_up` excluding core selection and rq lock
    /// wait (state checks, enqueue, preemption test).
    pub wakeup_fixed_ns: u64,
    /// Per-candidate-CPU cost of `select_idle_sibling` / idlest-core scan.
    pub wakeup_scan_per_cpu_ns: u64,
    /// Hold time of the runqueue lock during a wake-enqueue.
    pub rq_lock_hold_ns: u64,
    /// Cost model of each per-CPU runqueue lock.
    pub rq_lock: KernelLockParams,
    /// Cost of clearing a virtual-blocking flag and re-positioning the task
    /// in its runqueue (the whole VB wake path).
    pub vb_wake_ns: u64,
    /// Cost of one VB poll visit when every task on a core is parked (each
    /// parked thread briefly runs to check its flag).
    pub vb_poll_ns: u64,
    /// Periodic load-balance interval per CPU.
    pub balance_interval_ns: u64,
    /// Imbalance fraction (busiest vs here) required before pulling.
    pub balance_imbalance_pct: u32,
    /// Whether an idle CPU immediately tries to steal work (idle balance).
    pub idle_balance: bool,
    /// Sleeper credit: a waking sleeper's vruntime is floored at
    /// `min_vruntime - target_latency/2`, like CFS `place_entity`.
    pub sleeper_credit: bool,
}

impl Default for SchedParams {
    fn default() -> Self {
        SchedParams {
            target_latency_ns: 3 * MILLIS,
            min_granularity_ns: 750 * MICROS,
            wakeup_granularity_ns: MILLIS,
            ctx_switch_ns: 1_500,
            syscall_entry_ns: 400,
            wakeup_fixed_ns: 700,
            wakeup_scan_per_cpu_ns: 30,
            rq_lock_hold_ns: 250,
            rq_lock: KernelLockParams {
                base_cost_ns: 25,
                per_waiter_ns: 45,
                max_contention_waiters: 16,
            },
            vb_wake_ns: 120,
            vb_poll_ns: 200,
            balance_interval_ns: 10 * MILLIS,
            balance_imbalance_pct: 25,
            idle_balance: true,
            sleeper_credit: true,
        }
    }
}

impl SchedParams {
    /// The per-task time slice with `nr` schedulable tasks on a queue.
    pub fn slice_ns(&self, nr: usize) -> u64 {
        if nr == 0 {
            return self.target_latency_ns;
        }
        (self.target_latency_ns / nr as u64).max(self.min_granularity_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let p = SchedParams::default();
        assert_eq!(p.target_latency_ns, 3_000_000);
        assert_eq!(p.min_granularity_ns, 750_000);
        assert_eq!(p.ctx_switch_ns, 1_500);
    }

    #[test]
    fn slice_divides_latency_with_floor() {
        let p = SchedParams::default();
        assert_eq!(p.slice_ns(1), 3_000_000);
        assert_eq!(p.slice_ns(2), 1_500_000);
        assert_eq!(p.slice_ns(4), 750_000);
        // Floor at min granularity for many tasks.
        assert_eq!(p.slice_ns(32), 750_000);
        assert_eq!(p.slice_ns(0), 3_000_000);
    }
}
