//! CFS-like scheduler with virtual-blocking and busy-waiting-detection
//! hooks.
//!
//! Structure:
//! - [`params`]: scheduler constants (3 ms latency, 750 µs granularity,
//!   1.5 µs context switch, wakeup-path cost model).
//! - [`rq`]: the vruntime-ordered runqueue; virtual blocking parks tasks in
//!   the tail region above [`rq::VB_TAIL_BASE`].
//! - [`cpu`]: per-CPU state, including the runqueue lock and the monitored
//!   LBR/PMC hardware state.
//! - [`sched`]: the [`Scheduler`] — wake paths (vanilla and VB),
//!   pick/start/stop, SMT factor.
//! - [`balance`]: periodic and idle load balancing, the source of the
//!   migration storms the paper measures in Table 1.

pub mod balance;
pub mod cpu;
pub mod params;
pub mod rq;
#[allow(clippy::module_inception)]
pub mod sched;

pub use balance::{BALANCE_PASS_NS, MIGRATE_OP_NS};
pub use cpu::{CpuState, CpuTimeStats};
pub use params::SchedParams;
pub use rq::{CfsRq, VB_TAIL_BASE};
pub use sched::{MigrationEvent, Pick, Scheduler, StopReason, WakeOutcome};
