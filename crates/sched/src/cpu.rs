//! Per-CPU scheduler state.

use crate::rq::CfsRq;
use oversub_hw::CoreHw;
use oversub_simcore::{KernelLock, KernelLockParams, SimTime};
use oversub_task::TaskId;
use std::collections::BTreeMap;

/// Breakdown of where a CPU's time went — the basis of the paper's
/// "CPU utilization" column in Table 1.
#[derive(Clone, Copy, Debug, Default)]
pub struct CpuTimeStats {
    /// Time executing program work (compute / memory / critical sections).
    pub useful_ns: u64,
    /// Time burnt in busy-wait loops.
    pub spin_ns: u64,
    /// Kernel overhead: context switches, wakeup paths, balancing, VB polls.
    pub kernel_ns: u64,
    /// Idle time.
    pub idle_ns: u64,
    /// Context switches performed.
    pub context_switches: u64,
    /// Involuntary preemptions among those.
    pub preemptions: u64,
}

impl CpuTimeStats {
    /// Total accounted time.
    pub fn total_ns(&self) -> u64 {
        self.useful_ns + self.spin_ns + self.kernel_ns + self.idle_ns
    }

    /// Busy (non-idle) time.
    pub fn busy_ns(&self) -> u64 {
        self.useful_ns + self.spin_ns + self.kernel_ns
    }
}

/// State of one logical CPU.
pub struct CpuState {
    /// The CFS runqueue.
    pub rq: CfsRq,
    /// Currently running task, if any.
    pub current: Option<TaskId>,
    /// When the current task started its on-CPU stint.
    pub curr_since: SimTime,
    /// The runqueue spinlock (contended during bulk wakeups).
    pub rq_lock: KernelLock,
    /// Monitored hardware state (LBR + PMCs) for BWD.
    pub hw: CoreHw,
    /// The task that most recently ran here (cache-pollution tracking).
    pub last_ran: Option<TaskId>,
    /// Monotone counter of picks, used to expire BWD skip flags.
    pub pick_round: u64,
    /// `task -> pick_round` at which its BWD skip flag expires.
    pub skip_release: BTreeMap<TaskId, u64>,
    /// Next periodic load-balance time.
    pub next_balance: SimTime,
    /// Time accounting.
    pub time: CpuTimeStats,
    /// Virtual time up to which this CPU's time has been accounted.
    pub accounted_until: SimTime,
}

impl CpuState {
    /// Fresh CPU state.
    pub fn new(rq_lock_params: KernelLockParams) -> Self {
        CpuState {
            rq: CfsRq::new(),
            current: None,
            curr_since: SimTime::ZERO,
            rq_lock: KernelLock::new(rq_lock_params),
            hw: CoreHw::new(),
            last_ran: None,
            pick_round: 0,
            skip_release: BTreeMap::new(),
            next_balance: SimTime::ZERO,
            time: CpuTimeStats::default(),
            accounted_until: SimTime::ZERO,
        }
    }

    /// True if nothing is running and nothing schedulable is queued.
    pub fn is_idle(&self) -> bool {
        self.current.is_none() && self.rq.nr_schedulable() == 0
    }

    /// Load metric used by wake placement and balancing: queued tasks
    /// (including the running one). VB-parked tasks count — that is the
    /// mechanism that keeps load stable under VB.
    pub fn load(&self) -> usize {
        self.rq.nr_queued() + usize::from(self.current.is_some())
    }

    /// Schedulable depth (for slice computation): runnable + running.
    pub fn nr_for_slice(&self) -> usize {
        self.rq.nr_schedulable() + usize::from(self.current.is_some())
    }

    /// Account a span of idle time ending at `now`.
    pub fn account_idle(&mut self, now: SimTime) {
        let span = now.saturating_since(self.accounted_until);
        self.time.idle_ns += span;
        self.accounted_until = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_cpu_is_idle() {
        let c = CpuState::new(KernelLockParams::default());
        assert!(c.is_idle());
        assert_eq!(c.load(), 0);
        assert_eq!(c.nr_for_slice(), 0);
    }

    #[test]
    fn time_stats_sum() {
        let s = CpuTimeStats {
            useful_ns: 10,
            spin_ns: 5,
            kernel_ns: 3,
            idle_ns: 2,
            ..CpuTimeStats::default()
        };
        assert_eq!(s.total_ns(), 20);
        assert_eq!(s.busy_ns(), 18);
    }

    #[test]
    fn idle_accounting_advances_cursor() {
        let mut c = CpuState::new(KernelLockParams::default());
        c.account_idle(SimTime::from_nanos(500));
        assert_eq!(c.time.idle_ns, 500);
        c.account_idle(SimTime::from_nanos(700));
        assert_eq!(c.time.idle_ns, 700);
        assert_eq!(c.accounted_until, SimTime::from_nanos(700));
    }
}
