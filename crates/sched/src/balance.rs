//! Load balancing: periodic rebalance and idle stealing.
//!
//! This is the subsystem responsible for the "excessive, unnecessary
//! migrations" the paper blames on vanilla blocking (§2.4): sleeping
//! threads vanish from a CPU's load, the balancer sees imbalance, migrates
//! tasks, and when the sleepers wake the imbalance flips. Under virtual
//! blocking, parked tasks still count as load ([`CpuState::load`]), so the
//! balancer stays quiet.
//!
//! [`CpuState::load`]: crate::cpu::CpuState::load

use crate::sched::{MigrationEvent, Scheduler};
use oversub_hw::CpuId;
use oversub_simcore::SimTime;
use oversub_task::{TaskId, TaskTable};

/// Cost charged to the balancing CPU per balance pass.
pub const BALANCE_PASS_NS: u64 = 2_000;
/// Extra cost per migrated task (dequeue, lock both queues, enqueue).
pub const MIGRATE_OP_NS: u64 = 1_200;

impl Scheduler {
    /// Pull one migration victim from `from` to `to`, updating stats and
    /// charging the cache-refill penalty to the task.
    fn do_migrate(
        &mut self,
        tasks: &mut TaskTable,
        victim: TaskId,
        from: CpuId,
        to: CpuId,
    ) -> MigrationEvent {
        let cross = !self.topo.same_node(from, to);
        let old_min = self.cpus[from.0].rq.min_vruntime();
        let new_min = self.cpus[to.0].rq.min_vruntime();
        self.cpus[from.0].rq.dequeue(tasks, victim);
        // Re-base vruntime into the destination queue, as CFS does — but
        // cap the carried lag at one scheduling period. Queue min_vruntimes
        // are only loosely comparable (an idle queue's floor lags
        // arbitrarily), and an uncapped re-base compounds across repeated
        // migrations until vruntimes overflow into the VB tail region.
        let lag = tasks.vruntime[victim.0]
            .saturating_sub(old_min)
            .min(self.params.target_latency_ns);
        tasks.vruntime[victim.0] = new_min.saturating_add(lag);
        tasks.last_cpu[victim.0] = to;
        if cross {
            tasks.stats[victim.0].migrations_remote += 1;
        } else {
            tasks.stats[victim.0].migrations_local += 1;
        }
        let refill = self
            .mem
            .migration_refill_ns(tasks.footprint_bytes[victim.0], cross);
        self.add_penalty(victim, refill);
        self.cpus[to.0].rq.enqueue(tasks, victim);
        MigrationEvent {
            task: victim,
            from,
            to,
            cross_node: cross,
        }
    }

    /// Choose a migration victim on `from` movable to `to`: a schedulable,
    /// unpinned task whose cpuset allows the destination, preferring the
    /// one that has waited longest (highest vruntime — most cache-cold),
    /// never a VB-parked task.
    fn pick_victim(&self, tasks: &TaskTable, from: CpuId, to: CpuId) -> Option<TaskId> {
        self.cpus[from.0]
            .rq
            .schedulable_tasks(tasks)
            .filter(|&t| tasks.pinned[t.0].is_none() && tasks.allows(t, to) && !tasks.bwd_skip[t.0])
            .last()
    }

    /// Periodic balance pass run by `cpu`. Returns performed migrations and
    /// the kernel time the pass consumed on `cpu`.
    pub fn periodic_balance(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        now: SimTime,
    ) -> (Vec<MigrationEvent>, u64) {
        self.cpus[cpu.0].next_balance = now + self.params.balance_interval_ns;
        let my_load = self.cpus[cpu.0].load();
        let mut migrations = Vec::new();
        let mut cost = BALANCE_PASS_NS;

        if !self.online[cpu.0] {
            return (migrations, 0);
        }
        if !self.reference && self.waiter_board.get() == 0 {
            // No runqueue anywhere holds a schedulable waiter, so
            // `pick_victim` would return `None` for every source and the
            // pass below would migrate nothing at cost `BALANCE_PASS_NS`
            // (an imbalanced-looking source can only carry VB-parked
            // tasks, which are never victims). Same result, O(1).
            return (migrations, cost);
        }
        // Find the busiest CPU, in-node candidates preferred via a lower
        // imbalance threshold (CFS balances smaller domains more often).
        let mut busiest: Option<(CpuId, usize, bool)> = None;
        for c in self.topo.cpu_ids() {
            if c == cpu {
                continue;
            }
            let load = self.cpus[c.0].load();
            let in_node = self.topo.same_node(c, cpu);
            let threshold_pct = if in_node {
                self.params.balance_imbalance_pct
            } else {
                self.params.balance_imbalance_pct * 2
            };
            let imbalanced =
                load * 100 > my_load * (100 + threshold_pct as usize) && load >= my_load + 2;
            if imbalanced {
                match busiest {
                    // Prefer in-node sources, then higher load.
                    Some((_, bl, bn)) if (in_node, load) <= (bn, bl) => {}
                    _ => busiest = Some((c, load, in_node)),
                }
            }
        }

        if let Some((src, src_load, _)) = busiest {
            // Pull roughly half the imbalance, at least one task.
            let to_pull = ((src_load - my_load) / 2).max(1);
            for _ in 0..to_pull {
                if self.cpus[src.0].load() <= self.cpus[cpu.0].load() + 1 {
                    break;
                }
                let Some(victim) = self.pick_victim(tasks, src, cpu) else {
                    break;
                };
                migrations.push(self.do_migrate(tasks, victim, src, cpu));
                cost += MIGRATE_OP_NS;
            }
        }
        (migrations, cost)
    }

    /// Idle balance: `cpu` just ran out of schedulable work; try to steal
    /// one task. Returns the migration (if any) and the time spent.
    pub fn idle_pull(
        &mut self,
        tasks: &mut TaskTable,
        cpu: CpuId,
        _now: SimTime,
    ) -> (Option<MigrationEvent>, u64) {
        if !self.params.idle_balance || !self.online[cpu.0] {
            return (None, 0);
        }
        if !self.reference && self.waiter_board.get() == 0 {
            // No runqueue anywhere has a schedulable waiter, so the scan
            // below would find no candidate. Same result, O(1) — this is
            // the common case on wake-heavy workloads, where most resched
            // pokes find an idle machine.
            return (None, BALANCE_PASS_NS / 2);
        }
        // Steal from the most loaded CPU that has at least 2 queued
        // schedulable tasks (leave it one).
        let mut best: Option<(CpuId, usize, bool)> = None;
        for c in self.topo.cpu_ids() {
            if c == cpu {
                continue;
            }
            // A CPU is a steal candidate if it has a waiting schedulable
            // task beyond the one running.
            let waiting = self.cpus[c.0].rq.nr_schedulable();
            if waiting == 0 {
                continue;
            }
            let in_node = self.topo.same_node(c, cpu);
            let key = (in_node, waiting);
            match best {
                Some((_, bw, bn)) if key <= (bn, bw) => {}
                _ => best = Some((c, waiting, in_node)),
            }
        }
        let Some((src, _, _)) = best else {
            return (None, BALANCE_PASS_NS / 2);
        };
        match self.pick_victim(tasks, src, cpu) {
            Some(victim) => {
                let ev = self.do_migrate(tasks, victim, src, cpu);
                (Some(ev), BALANCE_PASS_NS / 2 + MIGRATE_OP_NS)
            }
            None => (None, BALANCE_PASS_NS / 2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SchedParams;
    use crate::sched::Pick;
    use oversub_hw::{MemModel, Topology};
    use oversub_task::{Action, FnProgram, Task, TaskId, TaskTable};

    fn mk_sched(topo: Topology) -> Scheduler {
        Scheduler::new(topo, SchedParams::default(), MemModel::default(), false)
    }

    fn mk_tasks(n: usize) -> TaskTable {
        let mut tt = TaskTable::new();
        for i in 0..n {
            tt.push(Task::new(
                TaskId(i),
                Box::new(FnProgram::new("nop", |_| Action::Exit)),
                CpuId(0),
            ));
        }
        tt
    }

    #[test]
    fn periodic_balance_pulls_from_busiest() {
        let mut s = mk_sched(Topology::flat(2));
        let mut tasks = mk_tasks(4);
        let now = SimTime::ZERO;
        for i in 0..4 {
            s.enqueue_new(&mut tasks, TaskId(i), CpuId(0), now);
        }
        let (migs, cost) = s.periodic_balance(&mut tasks, CpuId(1), now);
        assert!(!migs.is_empty(), "idle cpu should pull");
        assert!(cost >= BALANCE_PASS_NS);
        for m in &migs {
            assert_eq!(m.from, CpuId(0));
            assert_eq!(m.to, CpuId(1));
            assert!(!m.cross_node);
        }
        // Loads should now be closer.
        let l0 = s.cpus[0].load();
        let l1 = s.cpus[1].load();
        assert!(l0.abs_diff(l1) <= 2, "loads {l0} vs {l1}");
    }

    #[test]
    fn balanced_queues_do_not_migrate() {
        let mut s = mk_sched(Topology::flat(2));
        let mut tasks = mk_tasks(4);
        let now = SimTime::ZERO;
        s.enqueue_new(&mut tasks, TaskId(0), CpuId(0), now);
        s.enqueue_new(&mut tasks, TaskId(1), CpuId(0), now);
        s.enqueue_new(&mut tasks, TaskId(2), CpuId(1), now);
        s.enqueue_new(&mut tasks, TaskId(3), CpuId(1), now);
        let (migs, _) = s.periodic_balance(&mut tasks, CpuId(1), now);
        assert!(migs.is_empty());
    }

    #[test]
    fn vb_parked_tasks_stabilize_load() {
        let mut s = mk_sched(Topology::flat(2));
        let mut tasks = mk_tasks(4);
        let now = SimTime::ZERO;
        for i in 0..4 {
            s.enqueue_new(&mut tasks, TaskId(i), CpuId(0), now);
        }
        // Park all four under VB (still on cpu0's queue, still load).
        for i in 0..4 {
            let Pick::Run(t, _) = s.pick_next(&mut tasks, CpuId(0)) else {
                panic!()
            };
            s.start(&mut tasks, CpuId(0), t, now);
            s.stop_current(
                &mut tasks,
                CpuId(0),
                now,
                crate::sched::StopReason::VirtualBlock,
            );
            let _ = t;
            let _ = i;
        }
        assert_eq!(s.cpus[0].rq.nr_vb_parked(), 4);
        // Balancer must not steal parked tasks even though cpu1 is idle.
        let (migs, _) = s.periodic_balance(&mut tasks, CpuId(1), now);
        assert!(migs.is_empty(), "VB-parked tasks must never migrate");
        let (mig, _) = s.idle_pull(&mut tasks, CpuId(1), now);
        assert!(mig.is_none());
    }

    #[test]
    fn idle_pull_steals_one() {
        let mut s = mk_sched(Topology::flat(2));
        let mut tasks = mk_tasks(3);
        let now = SimTime::ZERO;
        for i in 0..3 {
            s.enqueue_new(&mut tasks, TaskId(i), CpuId(0), now);
        }
        let (mig, cost) = s.idle_pull(&mut tasks, CpuId(1), now);
        let mig = mig.expect("should steal");
        assert_eq!(mig.from, CpuId(0));
        assert!(cost > 0);
        assert_eq!(tasks.last_cpu[mig.task.0], CpuId(1));
        assert_eq!(tasks.stats[mig.task.0].migrations_local, 1);
    }

    #[test]
    fn pinned_tasks_are_never_stolen() {
        let mut s = mk_sched(Topology::flat(2));
        let mut tasks = mk_tasks(2);
        tasks.pinned[0] = Some(CpuId(0));
        tasks.pinned[1] = Some(CpuId(0));
        let now = SimTime::ZERO;
        s.enqueue_new(&mut tasks, TaskId(0), CpuId(0), now);
        s.enqueue_new(&mut tasks, TaskId(1), CpuId(0), now);
        let (mig, _) = s.idle_pull(&mut tasks, CpuId(1), now);
        assert!(mig.is_none());
    }

    #[test]
    fn cross_node_migration_is_marked() {
        let mut s = mk_sched(Topology::numa(2, 1, 1));
        let mut tasks = mk_tasks(3);
        let now = SimTime::ZERO;
        for i in 0..3 {
            tasks.footprint_bytes[i] = 1 << 20;
            s.enqueue_new(&mut tasks, TaskId(i), CpuId(0), now);
        }
        let (mig, _) = s.idle_pull(&mut tasks, CpuId(1), now);
        let mig = mig.expect("steal across nodes");
        assert!(mig.cross_node);
        assert_eq!(tasks.stats[mig.task.0].migrations_remote, 1);
        // Cross-node moves come with a pending cache penalty.
        assert!(s.take_penalty(mig.task) > 0);
    }

    #[test]
    fn in_node_source_preferred() {
        // cpu0+cpu1 on node0, cpu2+cpu3 on node1. cpu1 idle; cpu0 and cpu2
        // both loaded; stealing should prefer cpu0 (same node).
        let mut s = mk_sched(Topology::numa(2, 2, 1));
        let mut tasks = mk_tasks(6);
        let now = SimTime::ZERO;
        for i in 0..3 {
            s.enqueue_new(&mut tasks, TaskId(i), CpuId(0), now);
        }
        for i in 3..6 {
            s.enqueue_new(&mut tasks, TaskId(i), CpuId(2), now);
        }
        let (mig, _) = s.idle_pull(&mut tasks, CpuId(1), now);
        assert_eq!(mig.expect("steal").from, CpuId(0));
    }
}
