//! The per-CPU CFS runqueue.
//!
//! Linux keeps runnable tasks in a red-black tree ordered by vruntime; we
//! use a `BTreeSet<(vruntime, TaskId)>`, which has the same ordering
//! semantics. Virtual blocking inserts parked tasks at the tree's tail by
//! assigning them an arbitrarily large vruntime (above [`VB_TAIL_BASE`]);
//! they are skipped by `pick_next` but still counted as load, which is what
//! stabilizes the load balancer.
//!
//! All task state is read through the struct-of-arrays [`TaskTable`]: the
//! pick paths touch only the `vruntime`/`state`/`vb_blocked`/`bwd_skip`
//! columns, so a scan stays in a handful of cache lines even with hundreds
//! of tasks.

use oversub_task::{TaskId, TaskState, TaskTable};
use std::cell::Cell;
use std::collections::BTreeSet;
use std::rc::Rc;

/// Base of the vruntime region used to park virtually-blocked tasks.
/// Anything above this sorts after every live task.
pub const VB_TAIL_BASE: u64 = u64::MAX / 2;

/// A CFS runqueue.
#[derive(Clone, Debug, Default)]
pub struct CfsRq {
    tree: BTreeSet<(u64, TaskId)>,
    /// Runnable tasks excluding VB-parked ones.
    nr_schedulable: usize,
    /// VB-parked tasks on this queue.
    nr_vb_parked: usize,
    /// Monotonic floor for vruntimes of newly (re)enqueued tasks.
    min_vruntime: u64,
    /// Sequence used to order VB-parked tasks FIFO at the tail.
    vb_seq: u64,
    /// Cached unforced pick: the leftmost pickable `(vruntime, TaskId)` as
    /// of the last scan, maintained across enqueue/dequeue/requeue so
    /// `pick_next` is O(1) amortized. `None` means "unknown — scan".
    /// Interior mutability keeps `pick_next(&self)` read-only for callers.
    pick_cache: Cell<Option<(u64, TaskId)>>,
    /// When set, `pick_next` always scans (reference mode; the cache is
    /// bypassed and never populated).
    scan_mode: Cell<bool>,
    /// Machine-wide count of runqueues with at least one schedulable
    /// waiter, shared by every runqueue of one scheduler. Maintained on
    /// the 0↔nonzero transitions of `nr_schedulable` so the idle balancer
    /// can answer "is there anything to steal anywhere?" in O(1) instead
    /// of striding over every CPU's state (see `Scheduler::idle_pull`).
    waiter_board: Option<Rc<Cell<usize>>>,
}

/// Can `pick_next` return this in-tree entry as an unforced pick?
///
/// Branch-light on purpose: the three column reads are independent loads
/// from dense byte arrays and fold into one predicate, instead of chasing
/// a task struct across cache lines per test.
#[inline]
fn pickable(tasks: &TaskTable, tid: TaskId, vruntime: u64) -> bool {
    vruntime < VB_TAIL_BASE
        && tasks.state[tid.0] == TaskState::Runnable
        && !tasks.vb_blocked[tid.0]
        && !tasks.bwd_skip[tid.0]
}

impl CfsRq {
    /// Empty queue.
    pub fn new() -> Self {
        CfsRq::default()
    }

    /// Tasks on the queue that the scheduler may pick.
    #[inline]
    pub fn nr_schedulable(&self) -> usize {
        self.nr_schedulable
    }

    /// VB-parked tasks on the queue.
    #[inline]
    pub fn nr_vb_parked(&self) -> usize {
        self.nr_vb_parked
    }

    /// Total queued tasks (schedulable + VB-parked). This is the *load*
    /// the balancer sees: under VB, blocked tasks still contribute.
    #[inline]
    pub fn nr_queued(&self) -> usize {
        self.tree.len()
    }

    /// Current minimum-vruntime floor.
    #[inline]
    pub fn min_vruntime(&self) -> u64 {
        self.min_vruntime
    }

    /// True if nothing (not even a parked task) is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Share the machine-wide waiter count with this runqueue. Folds the
    /// queue's current population into the count, so it can be attached
    /// at any point.
    pub fn attach_waiter_board(&mut self, board: Rc<Cell<usize>>) {
        if self.nr_schedulable > 0 {
            board.set(board.get() + 1);
        }
        self.waiter_board = Some(board);
    }

    #[inline]
    fn waiters_became_nonzero(&self) {
        if let Some(b) = &self.waiter_board {
            b.set(b.get() + 1);
        }
    }

    #[inline]
    fn waiters_became_zero(&self) {
        if let Some(b) = &self.waiter_board {
            b.set(b.get() - 1);
        }
    }

    /// Next vruntime to use for parking a task at the tail (FIFO among
    /// parked tasks).
    pub fn next_vb_tail_vruntime(&mut self) -> u64 {
        self.vb_seq += 1;
        VB_TAIL_BASE + self.vb_seq
    }

    /// Insert a task. Its `vruntime` column entry must already be final
    /// (including sleeper credit or VB tail placement).
    pub fn enqueue(&mut self, tasks: &TaskTable, tid: TaskId) {
        let vruntime = tasks.vruntime[tid.0];
        let vb = tasks.vb_blocked[tid.0];
        debug_assert!(
            vb || vruntime < VB_TAIL_BASE,
            "non-parked task {tid:?} with tail-region vruntime {vruntime}"
        );
        let fresh = self.tree.insert((vruntime, tid));
        debug_assert!(fresh, "task {tid:?} double-enqueued");
        if vb {
            self.nr_vb_parked += 1;
        } else {
            self.nr_schedulable += 1;
            if self.nr_schedulable == 1 {
                self.waiters_became_nonzero();
            }
        }
        self.note_inserted(tasks, tid, vruntime);
    }

    /// Fold a freshly placed entry into the pick cache: a pickable entry
    /// left of the cached one becomes the new cached pick. A `None` cache
    /// stays `None` (a smaller unknown entry may exist) unless the tree
    /// holds only this entry.
    fn note_inserted(&self, tasks: &TaskTable, tid: TaskId, vruntime: u64) {
        if self.scan_mode.get() || !pickable(tasks, tid, vruntime) {
            return;
        }
        let key = (vruntime, tid);
        match self.pick_cache.get() {
            Some(c) if key < c => self.pick_cache.set(Some(key)),
            Some(_) => {}
            None => {
                if self.tree.len() == 1 {
                    self.pick_cache.set(Some(key));
                }
            }
        }
    }

    /// Remove a task (must be queued with exactly its current vruntime).
    pub fn dequeue(&mut self, tasks: &TaskTable, tid: TaskId) {
        let vruntime = tasks.vruntime[tid.0];
        let existed = self.tree.remove(&(vruntime, tid));
        debug_assert!(existed, "task {tid:?} not on queue");
        if self.pick_cache.get() == Some((vruntime, tid)) {
            self.pick_cache.set(None);
        }
        if tasks.vb_blocked[tid.0] {
            self.nr_vb_parked -= 1;
        } else {
            self.nr_schedulable -= 1;
            if self.nr_schedulable == 0 {
                self.waiters_became_zero();
            }
            self.update_min_vruntime();
        }
    }

    /// Reposition a task whose vruntime changed from `old_vruntime`.
    /// `was_vb` describes its parked status while at `old_vruntime`.
    pub fn requeue(&mut self, old_vruntime: u64, was_vb: bool, tasks: &TaskTable, tid: TaskId) {
        let existed = self.tree.remove(&(old_vruntime, tid));
        debug_assert!(existed, "task {tid:?} not on queue for requeue");
        if self.pick_cache.get() == Some((old_vruntime, tid)) {
            self.pick_cache.set(None);
        }
        let vruntime = tasks.vruntime[tid.0];
        self.tree.insert((vruntime, tid));
        self.note_inserted(tasks, tid, vruntime);
        match (was_vb, tasks.vb_blocked[tid.0]) {
            (true, false) => {
                self.nr_vb_parked -= 1;
                self.nr_schedulable += 1;
                if self.nr_schedulable == 1 {
                    self.waiters_became_nonzero();
                }
            }
            (false, true) => {
                self.nr_schedulable -= 1;
                if self.nr_schedulable == 0 {
                    self.waiters_became_zero();
                }
                self.nr_vb_parked += 1;
            }
            _ => {}
        }
        self.update_min_vruntime();
    }

    /// The leftmost schedulable entry, honouring BWD skip flags: the first
    /// non-skipped schedulable task wins; if every schedulable task is
    /// skip-flagged, the leftmost is returned (the caller clears its flag).
    ///
    /// Returns `(task, forced)` where `forced` means a skip flag had to be
    /// overridden.
    ///
    /// O(1) amortized: the leftmost pickable entry is cached across calls
    /// and revalidated here (tree membership + schedulability + skip flag);
    /// only a miss pays for the ordered scan, whose unforced result is
    /// cached for the next call. Forced picks (every schedulable task
    /// skip-flagged) are never cached. External eligibility changes that
    /// bypass the queue API — BWD skip-flag expiry on in-tree tasks — must
    /// call [`CfsRq::invalidate_pick_cache`].
    pub fn pick_next(&self, tasks: &TaskTable) -> Option<(TaskId, bool)> {
        if !self.scan_mode.get() {
            if let Some((vr, tid)) = self.pick_cache.get() {
                if tasks.vruntime[tid.0] == vr
                    && pickable(tasks, tid, vr)
                    && self.tree.contains(&(vr, tid))
                {
                    return Some((tid, false));
                }
                self.pick_cache.set(None);
            }
        }
        let picked = self.pick_next_scan(tasks);
        if !self.scan_mode.get() {
            if let Some((tid, false)) = picked {
                self.pick_cache.set(Some((tasks.vruntime[tid.0], tid)));
            }
        }
        picked
    }

    /// The uncached ordered scan behind [`CfsRq::pick_next`] (also the
    /// reference model for the cache's property tests).
    pub fn pick_next_scan(&self, tasks: &TaskTable) -> Option<(TaskId, bool)> {
        let mut first_skipped: Option<TaskId> = None;
        for &(vr, tid) in &self.tree {
            if vr >= VB_TAIL_BASE {
                break; // parked region; nothing schedulable beyond
            }
            if !tasks.schedulable(tid) {
                continue;
            }
            if tasks.bwd_skip[tid.0] {
                if first_skipped.is_none() {
                    first_skipped = Some(tid);
                }
                continue;
            }
            return Some((tid, false));
        }
        first_skipped.map(|t| (t, true))
    }

    /// Drop the cached pick. Must be called whenever an in-tree task's
    /// eligibility changes without going through
    /// enqueue/dequeue/requeue — today that is BWD skip-flag expiry.
    #[inline]
    pub fn invalidate_pick_cache(&self) {
        self.pick_cache.set(None);
    }

    /// Force `pick_next` to always use the ordered scan (reference mode).
    pub fn set_scan_mode(&self, on: bool) {
        self.scan_mode.set(on);
        self.pick_cache.set(None);
    }

    /// Leftmost VB-parked task, if any (used for flag-poll rotation when a
    /// core has only parked tasks).
    pub fn first_vb_parked(&self, tasks: &TaskTable) -> Option<TaskId> {
        self.tree
            .range((VB_TAIL_BASE, TaskId(0))..)
            .map(|&(_, tid)| tid)
            .find(|&tid| tasks.vb_blocked[tid.0])
    }

    /// Schedulable tasks in vruntime order — used by the load balancer to
    /// select migration victims (it never migrates VB-parked tasks).
    pub fn schedulable_tasks<'a>(
        &'a self,
        tasks: &'a TaskTable,
    ) -> impl Iterator<Item = TaskId> + 'a {
        self.tree
            .iter()
            .take_while(|&&(vr, _)| vr < VB_TAIL_BASE)
            .map(|&(_, tid)| tid)
            .filter(move |&tid| tasks.schedulable(tid))
    }

    /// Consistency check (diagnostics): recount schedulable entries from
    /// the tree and compare with the cached counter. Returns
    /// `(counter, tree_schedulable, tree_entries_in_parked_region)`.
    pub fn audit(&self, tasks: &TaskTable) -> (usize, usize, usize) {
        let mut sched = 0;
        let mut parked_region = 0;
        for &(vr, tid) in &self.tree {
            if vr >= VB_TAIL_BASE {
                parked_region += 1;
                continue;
            }
            if tasks.schedulable(tid) {
                sched += 1;
            }
        }
        (self.nr_schedulable, sched, parked_region)
    }

    /// All entries (diagnostics).
    pub fn entries(&self) -> Vec<(u64, TaskId)> {
        self.tree.iter().copied().collect()
    }

    /// Raise the min_vruntime floor to track the leftmost live entry.
    fn update_min_vruntime(&mut self) {
        if let Some(&(vr, _)) = self.tree.iter().next() {
            if vr < VB_TAIL_BASE && vr > self.min_vruntime {
                self.min_vruntime = vr;
            }
        }
    }

    /// Account `delta` of execution to the floor as the current task runs
    /// (the current task is not in the tree while running, matching CFS).
    pub fn advance_min_vruntime(&mut self, curr_vruntime: u64) {
        let leftmost = self
            .tree
            .iter()
            .next()
            .map(|&(vr, _)| vr)
            .filter(|&vr| vr < VB_TAIL_BASE);
        let target = match leftmost {
            Some(l) => l.min(curr_vruntime),
            None => curr_vruntime,
        };
        if target > self.min_vruntime {
            self.min_vruntime = target;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oversub_hw::CpuId;
    use oversub_task::{Action, FnProgram, Task};

    fn mk_task(id: usize, vruntime: u64) -> Task {
        let mut t = Task::new(
            TaskId(id),
            Box::new(FnProgram::new("nop", |_| Action::Exit)),
            CpuId(0),
        );
        t.vruntime = vruntime;
        t
    }

    fn table(specs: &[(usize, u64)]) -> TaskTable {
        let max = specs.iter().map(|&(i, _)| i).max().unwrap_or(0);
        let mut tt = TaskTable::new();
        for i in 0..=max {
            tt.push(mk_task(i, 0));
        }
        for &(i, vr) in specs {
            tt.vruntime[i] = vr;
        }
        tt
    }

    #[test]
    fn pick_lowest_vruntime() {
        let tasks = table(&[(0, 300), (1, 100), (2, 200)]);
        let mut rq = CfsRq::new();
        for tid in tasks.ids() {
            rq.enqueue(&tasks, tid);
        }
        assert_eq!(rq.pick_next(&tasks), Some((TaskId(1), false)));
        assert_eq!(rq.nr_schedulable(), 3);
    }

    #[test]
    fn vb_parked_tasks_are_skipped_but_counted() {
        let mut tasks = table(&[(0, 100), (1, 50)]);
        let mut rq = CfsRq::new();
        let tail = rq.next_vb_tail_vruntime();
        tasks.vb_park(TaskId(1), tail);
        rq.enqueue(&tasks, TaskId(0));
        rq.enqueue(&tasks, TaskId(1));
        assert_eq!(rq.pick_next(&tasks), Some((TaskId(0), false)));
        assert_eq!(rq.nr_schedulable(), 1);
        assert_eq!(rq.nr_vb_parked(), 1);
        assert_eq!(rq.nr_queued(), 2);
        assert_eq!(rq.first_vb_parked(&tasks), Some(TaskId(1)));
    }

    #[test]
    fn only_parked_tasks_means_no_pick() {
        let mut tasks = table(&[(0, 100)]);
        let mut rq = CfsRq::new();
        let tail = rq.next_vb_tail_vruntime();
        tasks.vb_park(TaskId(0), tail);
        rq.enqueue(&tasks, TaskId(0));
        assert_eq!(rq.pick_next(&tasks), None);
        assert_eq!(rq.first_vb_parked(&tasks), Some(TaskId(0)));
    }

    #[test]
    fn bwd_skip_defers_to_other_tasks() {
        let mut tasks = table(&[(0, 50), (1, 100)]);
        tasks.bwd_skip[0] = true;
        let mut rq = CfsRq::new();
        rq.enqueue(&tasks, TaskId(0));
        rq.enqueue(&tasks, TaskId(1));
        // Task 0 has lower vruntime but is skip-flagged.
        assert_eq!(rq.pick_next(&tasks), Some((TaskId(1), false)));
    }

    #[test]
    fn all_skipped_forces_leftmost() {
        let mut tasks = table(&[(0, 50), (1, 100)]);
        tasks.bwd_skip[0] = true;
        tasks.bwd_skip[1] = true;
        let mut rq = CfsRq::new();
        rq.enqueue(&tasks, TaskId(0));
        rq.enqueue(&tasks, TaskId(1));
        assert_eq!(rq.pick_next(&tasks), Some((TaskId(0), true)));
    }

    #[test]
    fn requeue_moves_between_regions() {
        let mut tasks = table(&[(0, 70)]);
        let mut rq = CfsRq::new();
        rq.enqueue(&tasks, TaskId(0));
        // Park it.
        let old = tasks.vruntime[0];
        let tail = rq.next_vb_tail_vruntime();
        tasks.vb_park(TaskId(0), tail);
        rq.requeue(old, false, &tasks, TaskId(0));
        assert_eq!(rq.nr_schedulable(), 0);
        assert_eq!(rq.nr_vb_parked(), 1);
        // Unpark.
        let old = tasks.vruntime[0];
        tasks.vb_unpark(TaskId(0));
        rq.requeue(old, true, &tasks, TaskId(0));
        assert_eq!(rq.nr_schedulable(), 1);
        assert_eq!(rq.nr_vb_parked(), 0);
        assert_eq!(tasks.vruntime[0], 70);
    }

    #[test]
    fn dequeue_updates_counts() {
        let tasks = table(&[(0, 10), (1, 20)]);
        let mut rq = CfsRq::new();
        rq.enqueue(&tasks, TaskId(0));
        rq.enqueue(&tasks, TaskId(1));
        rq.dequeue(&tasks, TaskId(0));
        assert_eq!(rq.nr_schedulable(), 1);
        assert_eq!(rq.pick_next(&tasks), Some((TaskId(1), false)));
        rq.dequeue(&tasks, TaskId(1));
        assert!(rq.is_empty());
    }

    #[test]
    fn min_vruntime_is_monotonic() {
        let tasks = table(&[(0, 100), (1, 200)]);
        let mut rq = CfsRq::new();
        rq.enqueue(&tasks, TaskId(0));
        rq.enqueue(&tasks, TaskId(1));
        rq.dequeue(&tasks, TaskId(0));
        let v1 = rq.min_vruntime();
        rq.advance_min_vruntime(250);
        let v2 = rq.min_vruntime();
        assert!(v2 >= v1);
        rq.advance_min_vruntime(10);
        assert_eq!(rq.min_vruntime(), v2, "floor never decreases");
    }

    #[test]
    fn vb_tail_vruntimes_are_fifo() {
        let mut rq = CfsRq::new();
        let a = rq.next_vb_tail_vruntime();
        let b = rq.next_vb_tail_vruntime();
        assert!(b > a);
        assert!(a > VB_TAIL_BASE);
    }

    #[test]
    fn schedulable_iteration_respects_order_and_filters() {
        let mut tasks = table(&[(0, 30), (1, 10), (2, 20)]);
        let mut rq = CfsRq::new();
        let tail = rq.next_vb_tail_vruntime();
        tasks.vb_park(TaskId(2), tail);
        for tid in tasks.ids() {
            rq.enqueue(&tasks, tid);
        }
        let order: Vec<_> = rq.schedulable_tasks(&tasks).collect();
        assert_eq!(order, vec![TaskId(1), TaskId(0)]);
    }
}
