//! Property-based engine invariants: random small workloads must always
//! terminate, conserve per-CPU time, and replay deterministically — under
//! every mechanism combination.

use oversub::metrics::RunReport;
use oversub::task::{Action, ScriptProgram, SyncOp};
use oversub::workload::{ThreadSpec, Workload, WorldBuilder};
use oversub::{run, MachineSpec, Mechanisms, RunConfig};
use proptest::prelude::*;

/// A randomly-shaped but always-well-formed workload: every thread does
/// `rounds` of [compute, optional lock/unlock pair, barrier], so no
/// workload can deadlock by construction.
#[derive(Clone, Debug)]
struct RandomBsp {
    threads: usize,
    rounds: usize,
    compute_ns: Vec<u64>,
    use_mutex: bool,
    use_spin: bool,
}

impl Workload for RandomBsp {
    fn name(&self) -> &str {
        "random-bsp"
    }

    fn build(&mut self, w: &mut WorldBuilder) {
        let b = w.barrier(self.threads);
        let m = w.mutex();
        let s = w.spinlock(oversub::locks::SpinPolicy::ttas());
        for i in 0..self.threads {
            let mut script = Vec::new();
            for k in 0..self.rounds {
                let ns = self.compute_ns[(i * 7 + k) % self.compute_ns.len()];
                script.push(Action::Compute { ns });
                if self.use_mutex {
                    script.push(Action::Sync(SyncOp::MutexLock(m)));
                    script.push(Action::Compute { ns: 2_000 });
                    script.push(Action::Sync(SyncOp::MutexUnlock(m)));
                }
                if self.use_spin {
                    script.push(Action::Sync(SyncOp::SpinAcquire(s)));
                    script.push(Action::Compute { ns: 1_500 });
                    script.push(Action::Sync(SyncOp::SpinRelease(s)));
                }
                script.push(Action::Sync(SyncOp::BarrierWait(b)));
            }
            w.spawn(ThreadSpec::new(Box::new(ScriptProgram::once(script))));
        }
    }
}

fn arb_workload() -> impl Strategy<Value = RandomBsp> {
    (
        2usize..12,
        2usize..8,
        proptest::collection::vec(5_000u64..400_000, 1..6),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(threads, rounds, compute_ns, use_mutex, use_spin)| RandomBsp {
                threads,
                rounds,
                compute_ns,
                use_mutex,
                use_spin,
            },
        )
}

fn arb_mech() -> impl Strategy<Value = Mechanisms> {
    (any::<bool>(), any::<bool>(), any::<bool>()).prop_map(|(vb, bwd, auto)| Mechanisms {
        vb,
        vb_auto_disable: auto,
        bwd,
        ple: false,
        neighbour: false,
    })
}

fn run_once(wl: &RandomBsp, cores: usize, mech: Mechanisms, seed: u64) -> RunReport {
    let cfg = RunConfig::vanilla(cores)
        .with_machine(MachineSpec::PaperN(cores))
        .with_mech(mech)
        .with_seed(seed);
    run(&mut wl.clone(), &cfg)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every well-formed workload terminates well before the safety cap.
    #[test]
    fn workloads_always_terminate(
        wl in arb_workload(),
        cores in 1usize..9,
        mech in arb_mech(),
    ) {
        let r = run_once(&wl, cores, mech, 11);
        prop_assert!(
            r.makespan_ns < 100_000_000_000,
            "run hit the cap: {} threads, {} cores, {:?}",
            wl.threads, cores, mech
        );
    }

    /// Per-CPU time buckets account for (almost) every nanosecond.
    #[test]
    fn time_is_conserved(
        wl in arb_workload(),
        cores in 1usize..9,
        mech in arb_mech(),
    ) {
        let r = run_once(&wl, cores, mech, 13);
        let total = r.cpus.useful_ns + r.cpus.spin_ns + r.cpus.kernel_ns + r.cpus.idle_ns;
        let expect = r.makespan_ns * cores as u64;
        let slack = expect / 50 + 2_000_000;
        prop_assert!(
            total.abs_diff(expect) <= slack,
            "accounting drift: {total} vs {expect}"
        );
    }

    /// Identical configurations replay identically.
    #[test]
    fn runs_are_reproducible(
        wl in arb_workload(),
        cores in 1usize..9,
        mech in arb_mech(),
        seed in any::<u64>(),
    ) {
        let a = run_once(&wl, cores, mech, seed);
        let b = run_once(&wl, cores, mech, seed);
        prop_assert_eq!(a.makespan_ns, b.makespan_ns);
        prop_assert_eq!(a.cpus.context_switches, b.cpus.context_switches);
        prop_assert_eq!(a.tasks.migrations(), b.tasks.migrations());
        prop_assert_eq!(a.blocking.wakes, b.blocking.wakes);
        prop_assert_eq!(a.bwd.detections, b.bwd.detections);
    }

    /// The mechanisms never break a workload: total useful work is
    /// invariant across mechanism choices (it is the program's own work).
    #[test]
    fn useful_work_is_mechanism_invariant(
        wl in arb_workload(),
        cores in 2usize..9,
    ) {
        let vanilla = run_once(&wl, cores, Mechanisms::vanilla(), 17);
        let opt = run_once(&wl, cores, Mechanisms::optimized(), 17);
        // Compute work is identical by construction; allow tolerance for
        // lock fast-path costs being counted as useful time.
        let a = vanilla.cpus.useful_ns as f64;
        let b = opt.cpus.useful_ns as f64;
        prop_assert!(
            (a - b).abs() / a.max(1.0) < 0.02,
            "useful work changed: vanilla {a} vs optimized {b}"
        );
    }
}

/// Soak test (run explicitly with `cargo test -- --ignored`): a large mixed
/// workload across every mechanism, checking termination and conservation
/// at a scale the regular suite does not reach.
#[test]
#[ignore = "soak test: ~a minute of host time"]
fn soak_large_mixed_workload() {
    let wl = RandomBsp {
        threads: 64,
        rounds: 200,
        compute_ns: vec![20_000, 150_000, 700_000, 80_000, 350_000],
        use_mutex: true,
        use_spin: true,
    };
    for mech in [
        Mechanisms::vanilla(),
        Mechanisms::vb_only(),
        Mechanisms::bwd_only(),
        Mechanisms::optimized(),
    ] {
        let r = run_once(&wl, 8, mech, 99);
        assert!(
            r.makespan_ns < 300_000_000_000,
            "soak stalled under {mech:?}"
        );
        let total = r.cpus.useful_ns + r.cpus.spin_ns + r.cpus.kernel_ns + r.cpus.idle_ns;
        let expect = r.makespan_ns * 8;
        assert!(
            total.abs_diff(expect) < expect / 50 + 2_000_000,
            "conservation broke at scale under {mech:?}: {total} vs {expect}"
        );
    }
}
