//! Chaos suite for the fault-injection layer and liveness watchdog.
//!
//! Three guarantees are pinned here:
//!
//! 1. **Golden zero-rate determinism** — a `FaultPlan::default()` (all
//!    rates zero) must be byte-identical, through the canonical report
//!    JSON, to a run with no fault layer at all. The injector draws zero
//!    random numbers, schedules zero events, and allocates zero state.
//! 2. **Chaos matrix** — every fault kind crossed with representative
//!    workloads either completes cleanly or terminates with a structured
//!    watchdog diagnostic. No panic, no hang, and never an invariant
//!    violation (`rq-inconsistency` / `waiter-board-mismatch` /
//!    `event-order` are engine bugs, not acceptable fault outcomes).
//! 3. **Degradation actually engages** — heavy lost wakeups drive the
//!    watchdog's VB rescue path (counted in `MechCounters::recoveries`),
//!    and sensor noise drives BWD's adaptive backoff.

use oversub::simcore::SimTime;
use oversub::workload::Workload;
use oversub::workloads::memcached::Memcached;
use oversub::workloads::micro::{Primitive, PrimitiveStress};
use oversub::workloads::pipeline::{SpinPipeline, WaitFlavor};
use oversub::workloads::skeletons::{BenchProfile, Skeleton};
use oversub::{
    run, try_run, FaultPlan, MachineSpec, Mechanisms, RunConfig, RunReport, WatchdogParams,
};
use proptest::prelude::*;

/// Diagnostic kinds that indicate an engine bug rather than an injected
/// fault or a watchdog-mediated outcome. These must never appear.
/// `data-race` and `schedule-divergence` belong here too: the chaos
/// matrix never arms the race detector or the schedule certifier, so the
/// engine emitting either kind under chaos means analysis state leaked
/// into an unarmed run.
const FAILURE_KINDS: &[&str] = &[
    "rq-inconsistency",
    "waiter-board-mismatch",
    "event-order",
    "lock-grant-mismatch",
    "data-race",
    "schedule-divergence",
];

/// A named workload case: label, CPU count, and a fresh-instance factory.
type WorkloadCase<'a> = (&'a str, usize, Box<dyn FnMut() -> Box<dyn Workload>>);

fn assert_no_invariant_violations(report: &RunReport, scenario: &str) {
    for d in &report.diagnostics {
        assert!(
            !FAILURE_KINDS.contains(&d.kind.as_str()),
            "{scenario}: invariant violation diagnostic: {} at {} ns: {}",
            d.kind,
            d.at_ns,
            d.detail
        );
    }
}

fn base_cfg(cpus: usize, seed: u64) -> RunConfig {
    RunConfig::vanilla(cpus)
        .with_machine(MachineSpec::PaperN(cpus))
        .with_mech(Mechanisms::optimized())
        .with_seed(seed)
        .with_max_time(SimTime::from_millis(150))
}

/// Golden test: a zero-rate fault plan must not perturb a single byte of
/// the report, on every workload class the fault hooks touch (futex
/// parks, epoll waits, BWD timers, slice arming).
#[test]
fn zero_rate_fault_plan_is_bit_identical() {
    let mc_cpus = Memcached::paper(16, 8, 40_000.0).total_cpus();
    let mut cases: Vec<WorkloadCase> = vec![
        (
            "pipeline",
            8,
            Box::new(|| Box::new(SpinPipeline::new(12, 40, WaitFlavor::Flags))),
        ),
        (
            "memcached",
            mc_cpus,
            Box::new(|| Box::new(Memcached::paper(16, 8, 40_000.0))),
        ),
        (
            "mutex-stress",
            8,
            Box::new(|| Box::new(PrimitiveStress::new(12, 200, Primitive::Mutex, 2_000))),
        ),
    ];
    for (name, cpus, mk) in &mut cases {
        let cfg = base_cfg(*cpus, 42);
        let plain = run(&mut *mk(), &cfg).to_json();
        let zeroed = run(&mut *mk(), &cfg.clone().with_faults(FaultPlan::default())).to_json();
        assert_eq!(
            plain, zeroed,
            "{name}: zero-rate fault plan perturbed the run"
        );
    }
}

/// An armed watchdog on a healthy run is pure observation: no rescues, no
/// diagnostics, and a byte-identical report.
#[test]
fn quiet_watchdog_is_invisible() {
    let cfg = base_cfg(Memcached::paper(16, 8, 40_000.0).total_cpus(), 7);
    let plain = run(&mut Memcached::paper(16, 8, 40_000.0), &cfg);
    let watched = run(
        &mut Memcached::paper(16, 8, 40_000.0),
        &cfg.clone().with_watchdog(WatchdogParams::default()),
    );
    assert!(
        watched.diagnostics.is_empty(),
        "healthy run produced diagnostics: {:?}",
        watched.diagnostics
    );
    assert_eq!(plain.to_json(), watched.to_json());
}

/// The chaos matrix: every fault kind crossed with three workload shapes,
/// watchdog armed, bounded by an event budget. Each cell must produce a
/// report (clean or diagnosed) — never a panic, never a violated engine
/// invariant. The 15 cells are independent simulations and run as one
/// batch on the sweep worker pool (`OVERSUB_JOBS`), results checked in
/// matrix order.
#[test]
fn chaos_matrix_completes_or_diagnoses() {
    use oversub::simcore::pool::Job;

    let plans: Vec<(&str, FaultPlan)> = vec![
        ("lost-wakeup", FaultPlan::default().lost_wakeups(0.3)),
        (
            "timer-jitter",
            FaultPlan::default().timer_jitter(200_000).timer_drops(0.2),
        ),
        ("sensor-noise", FaultPlan::default().sensor_noise(0.3)),
        (
            "spurious-storm",
            FaultPlan::default()
                .spurious_wakeups(0.5)
                .revocation_storms(0.2, 2),
        ),
        ("slice-delay", FaultPlan::default().slice_delays(100_000)),
    ];
    let mc_cpus = Memcached::paper(16, 8, 40_000.0).total_cpus();
    type SendCase<'a> = (
        &'a str,
        usize,
        Box<dyn Fn() -> Box<dyn Workload> + Send + Sync>,
    );
    let workloads: Vec<SendCase> = vec![
        (
            "pipeline",
            8,
            Box::new(|| Box::new(SpinPipeline::new(12, 30, WaitFlavor::Flags))),
        ),
        (
            "memcached",
            mc_cpus,
            Box::new(|| Box::new(Memcached::paper(16, 8, 40_000.0))),
        ),
        (
            "barrier-stress",
            8,
            Box::new(|| Box::new(PrimitiveStress::new(16, 150, Primitive::Barrier, 2_000))),
        ),
    ];
    let mut cells: Vec<Job<'_, (String, RunReport)>> = Vec::new();
    for (plan_name, plan) in &plans {
        for (wl_name, cpus, mk) in &workloads {
            let scenario = format!("{plan_name}/{wl_name}");
            let cfg = base_cfg(*cpus, 9)
                .with_faults(plan.clone())
                .with_watchdog(WatchdogParams::default())
                .with_max_events(20_000_000);
            cells.push(Box::new(move || {
                let report = try_run(&mut *mk(), &cfg)
                    .unwrap_or_else(|e| panic!("{scenario}: engine error: {e}"));
                (scenario, report)
            }));
        }
    }
    for (scenario, report) in oversub::sweep::run_batch(cells) {
        assert_no_invariant_violations(&report, &scenario);
    }
}

/// Heavy lost wakeups + an armed watchdog: parked orphans must be rescued
/// (VB degrades to a real wake), visible both as `recoveries` on the VB
/// mechanism and as `lost-wakeup-rescue` diagnostics.
#[test]
fn lost_wakeups_are_rescued_by_the_watchdog() {
    let cfg = RunConfig::vanilla(4)
        .with_machine(MachineSpec::PaperN(4))
        .with_mech(Mechanisms::optimized())
        .with_seed(11)
        .with_max_time(SimTime::from_millis(400))
        .with_faults(FaultPlan::default().lost_wakeups(0.5))
        .with_watchdog(WatchdogParams::default())
        .with_max_events(20_000_000);
    let mut wl = PrimitiveStress::new(16, 400, Primitive::Mutex, 2_000);
    let report = try_run(&mut wl, &cfg).expect("chaos run must not error");
    assert_no_invariant_violations(&report, "lost-wakeup-rescue");
    let vb = report.mech("vb").expect("vb mechanism present");
    assert!(
        vb.recoveries > 0,
        "expected watchdog rescues, got none; diagnostics: {:?}",
        report.diagnostics
    );
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.kind == "lost-wakeup-rescue"),
        "rescues happened but no lost-wakeup-rescue diagnostic was recorded"
    );
}

/// A lost-wakeup stall, observed with lockdep armed but the rescue path
/// suppressed (enormous park timeout): the watchdog's `no-progress`
/// diagnostic must be *attributed* — its detail carries the wait-for
/// summary, and the stranded waiter's lock shows up as held by nobody,
/// which is exactly the lost-wakeup signature (a deadlock would show a
/// cycle of owners instead).
#[test]
fn lost_wakeup_stall_is_attributed_by_lockdep() {
    let cfg = RunConfig::vanilla(2)
        .with_machine(MachineSpec::PaperN(2))
        // VB is what makes wakeups losable (virtual parks); without it
        // every park is a real sleep and the fault hook never fires.
        .with_mech(Mechanisms::optimized())
        .with_seed(3)
        .with_max_time(SimTime::from_millis(200))
        .with_faults(FaultPlan::default().lost_wakeups(1.0))
        .with_lockdep()
        .with_watchdog(WatchdogParams {
            // No rescue: the park timeout never fires inside the run.
            park_timeout_ns: u64::MAX / 2,
            hang_timeout_ns: 5_000_000,
            ..WatchdogParams::default()
        })
        .with_max_events(5_000_000);
    let mut wl = PrimitiveStress::new(6, 50, Primitive::Mutex, 2_000);
    let report = try_run(&mut wl, &cfg).expect("stalled run must still produce a report");
    assert_no_invariant_violations(&report, "lost-wakeup-attribution");
    let hang = report
        .diagnostics
        .iter()
        .find(|d| d.kind == "no-progress")
        .expect("fully lost wakeups with no rescue must stall into no-progress");
    assert!(
        hang.detail.contains("wait-for:"),
        "no-progress detail lacks lockdep attribution: {}",
        hang.detail
    );
    assert!(
        hang.detail.contains("held by nobody"),
        "lost-wakeup signature (waiting on a free lock) missing: {}",
        hang.detail
    );
}

/// Sensor noise with BWD enabled: the adaptive backoff must engage
/// (counted as `recoveries` on the BWD mechanism) once the false-positive
/// rate crosses its threshold.
#[test]
fn sensor_noise_triggers_bwd_backoff() {
    let cfg = RunConfig::vanilla(8)
        .with_machine(MachineSpec::PaperN(8))
        .with_mech(Mechanisms::optimized())
        .with_seed(5)
        .with_max_time(SimTime::from_millis(300))
        .with_faults(FaultPlan::default().sensor_noise(0.6))
        .with_watchdog(WatchdogParams::default())
        .with_max_events(20_000_000);
    let mut wl = Skeleton::scaled(
        BenchProfile::by_name("streamcluster").expect("known benchmark"),
        16,
        0.3,
    )
    .with_salt(3);
    let report = try_run(&mut wl, &cfg).expect("chaos run must not error");
    assert_no_invariant_violations(&report, "sensor-noise-backoff");
    let bwd = report.mech("bwd").expect("bwd mechanism present");
    assert!(
        bwd.recoveries > 0,
        "expected BWD backoff escalations under 60% sensor noise, got none \
         (checks {}, detections {})",
        report.bwd.checks,
        report.bwd.detections
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any fault schedule — arbitrary rates, seed, and core count — must
    /// complete or terminate with a watchdog diagnostic within the step
    /// budget. Never a panic, never an invariant violation.
    #[test]
    fn arbitrary_fault_schedules_are_safe(
        seed in any::<u64>(),
        cpus in 2usize..8,
        lost in 0.0f64..1.0,
        spurious in 0.0f64..1.0,
        drops in 0.0f64..1.0,
        jitter in 0u64..500_000,
        noise in 0.0f64..1.0,
        slice in 0u64..200_000,
        storm in 0.0f64..1.0,
    ) {
        let plan = FaultPlan::default()
            .lost_wakeups(lost)
            .spurious_wakeups(spurious)
            .timer_drops(drops)
            .timer_jitter(jitter)
            .sensor_noise(noise)
            .slice_delays(slice)
            .revocation_storms(storm, 1);
        let cfg = RunConfig::vanilla(cpus)
            .with_machine(MachineSpec::PaperN(cpus))
            .with_mech(Mechanisms::optimized())
            .with_seed(seed)
            .with_max_time(SimTime::from_millis(60))
            .with_faults(plan)
            .with_watchdog(WatchdogParams::default())
            .with_max_events(5_000_000);
        let mut wl = SpinPipeline::new(8, 20, WaitFlavor::Flags);
        let report = try_run(&mut wl, &cfg);
        prop_assert!(report.is_ok(), "engine error: {:?}", report.err());
        let report = report.unwrap();
        for d in &report.diagnostics {
            prop_assert!(
                !FAILURE_KINDS.contains(&d.kind.as_str()),
                "invariant violation under faults: {} — {}", d.kind, d.detail
            );
        }
    }
}
