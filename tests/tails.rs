//! The exact tail-latency pipeline, end to end:
//!
//! 1. **Digest algebra** — merging [`LatencyDigest`]s is associative and
//!    commutative, and a merged digest is byte-identical (canonical JSON)
//!    to single-threaded accumulation of the same samples.
//! 2. **Sweep byte-identity** — the exact digest inside a `RunReport`
//!    serializes byte-identically at `jobs = 1` and `jobs = 4`, and again
//!    on a warm-cache replay, for a request-shaped workload.
//! 3. **Empty-but-present** — a workload that completes zero requests
//!    still serializes an empty latency block, and reports parsed from
//!    legacy JSON (no `latency_exact` key) tolerate its absence.
//!
//! The sweep jobs knob and run cache are process-global, so the sweep
//! assertions live in one `#[test]` (same discipline as `tests/sweep.rs`).

use oversub::metrics::json::JsonValue;
use oversub::metrics::LatencyDigest;
use oversub::simcore::SimTime;
use oversub::sweep::{self, Sweep};
use oversub::workload::Workload;
use oversub::workloads::memcached::Memcached;
use oversub::workloads::micro::ComputeYield;
use oversub::{run_labelled, Mechanisms, RunConfig, RunReport};
use proptest::prelude::*;

fn digest_of(samples: &[u64]) -> LatencyDigest {
    let mut d = LatencyDigest::new();
    for &s in samples {
        d.record(s);
    }
    d
}

fn canonical_json(d: &LatencyDigest) -> String {
    let mut d = d.clone();
    d.canonicalize();
    d.to_json_value().to_string_compact()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// merge(a, b) == merge(b, a), as canonical bytes.
    #[test]
    fn digest_merge_is_commutative(
        a in proptest::collection::vec(0u64..2_000_000, 0..40),
        b in proptest::collection::vec(0u64..2_000_000, 0..40),
    ) {
        let (da, db) = (digest_of(&a), digest_of(&b));
        let mut ab = da.clone();
        ab.merge(&db);
        let mut ba = db.clone();
        ba.merge(&da);
        prop_assert_eq!(canonical_json(&ab), canonical_json(&ba));
    }

    /// merge(merge(a, b), c) == merge(a, merge(b, c)), as canonical bytes.
    #[test]
    fn digest_merge_is_associative(
        a in proptest::collection::vec(0u64..2_000_000, 0..30),
        b in proptest::collection::vec(0u64..2_000_000, 0..30),
        c in proptest::collection::vec(0u64..2_000_000, 0..30),
    ) {
        let (da, db, dc) = (digest_of(&a), digest_of(&b), digest_of(&c));
        let mut left = da.clone();
        left.merge(&db);
        left.merge(&dc);
        let mut bc = db.clone();
        bc.merge(&dc);
        let mut right = da.clone();
        right.merge(&bc);
        prop_assert_eq!(canonical_json(&left), canonical_json(&right));
    }

    /// Sharding samples across workers and merging equals accumulating
    /// them on one thread — the pool-merge soundness property.
    #[test]
    fn sharded_merge_equals_single_threaded_accumulation(
        samples in proptest::collection::vec(0u64..5_000_000, 1..120),
        shards in 2usize..5,
    ) {
        let single = digest_of(&samples);
        let mut merged = LatencyDigest::new();
        for chunk in samples.chunks(samples.len().div_ceil(shards)) {
            merged.merge(&digest_of(chunk));
        }
        prop_assert_eq!(canonical_json(&merged), canonical_json(&single));
        prop_assert_eq!(merged.count(), samples.len() as u64);
        // Percentiles agree with a sorted reference.
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        prop_assert_eq!(merged.p50(), sorted[(samples.len()).div_ceil(2) - 1]);
        prop_assert_eq!(merged.max(), *sorted.last().unwrap());
    }
}

/// One request-shaped arm, rendered as the report's canonical JSON.
fn render_memcached_json() -> String {
    let mk = || Box::new(Memcached::paper(8, 2, 40_000.0)) as Box<dyn Workload>;
    let cfg = RunConfig::vanilla(Memcached::paper(8, 2, 40_000.0).total_cpus())
        .with_mech(Mechanisms::optimized())
        .with_seed(23)
        .with_max_time(SimTime::from_millis(120));
    let mut sweep = Sweep::new();
    let idx = sweep.add("memcached", cfg, mk);
    let r = sweep.run();
    r[idx].to_json()
}

#[test]
fn exact_digest_is_byte_identical_across_jobs_and_cache_replay() {
    // Cold cache, sequential.
    sweep::reset();
    sweep::set_jobs(1);
    let seq = render_memcached_json();
    assert!(
        seq.contains("\"latency_exact\""),
        "request-shaped report must carry the exact digest block"
    );
    // Cold cache, pooled.
    sweep::reset();
    sweep::set_jobs(4);
    let par = render_memcached_json();
    assert_eq!(
        seq, par,
        "exact digest bytes differ between jobs=1 and jobs=4"
    );
    // Warm-cache replay.
    let before = sweep::stats();
    let replay = render_memcached_json();
    let after = sweep::stats();
    sweep::set_jobs(0);
    assert_eq!(replay, par, "warm-cache replay changed the digest bytes");
    assert!(
        after.cache_hits > before.cache_hits,
        "replay was expected to hit the run cache"
    );

    // The digest in the replayed report round-trips through JSON.
    let v = JsonValue::parse(&replay).expect("report JSON parses");
    let d = LatencyDigest::from_json_value(v.get("latency_exact").expect("key present"))
        .expect("digest parses");
    assert!(!d.is_empty(), "memcached run must complete requests");
    assert!(d.p50() <= d.p99() && d.p99() <= d.p999() && d.p999() <= d.max());
}

#[test]
fn zero_request_workload_serializes_empty_but_present_latency_block() {
    // ComputeYield is a batch workload: no requests, no sink.
    let mut wl = ComputeYield::fig2a(4, 4_000_000);
    let cfg = RunConfig::vanilla(4).with_seed(3);
    let r = run_labelled(&mut wl, &cfg, "batch");
    assert!(r.latency_exact.is_empty());
    assert_eq!(r.latency_exact.p999(), 0, "empty digest percentiles are 0");
    let json = r.to_json();
    let golden = "\"latency_exact\":{\"count\":0,\"sum\":0,\"values\":[],\"counts\":[]}";
    assert!(
        json.contains(golden),
        "zero-request reports must serialize an empty-but-present latency \
         block; got: {json}"
    );
    // Round trip preserves emptiness.
    let back = RunReport::from_json(&json).expect("round trip");
    assert!(back.latency_exact.is_empty());
}

#[test]
fn legacy_reports_without_the_digest_key_still_parse() {
    let r = RunReport {
        label: "legacy".to_string(),
        ..RunReport::default()
    };
    let json = r.to_json();
    // Strip the new key to simulate a report written before the digest
    // existed (old sweep caches, committed baselines).
    let legacy = json.replace(
        "\"latency_exact\":{\"count\":0,\"sum\":0,\"values\":[],\"counts\":[]},",
        "",
    );
    assert_ne!(legacy, json, "the strip must remove the digest key");
    let back = RunReport::from_json(&legacy).expect("legacy JSON parses");
    assert!(back.latency_exact.is_empty());
    assert_eq!(back.label, "legacy");
}
