//! End-to-end guarantees of the overload control plane:
//!
//! 1. **Frontier byte-identity** — `ext_overload_frontier` rendered at
//!    `jobs = 1` and `jobs = 4` from cold caches, and again from the warm
//!    cache, must produce identical bytes.
//! 2. **Accounting invariant** — `completed + deadline_exceeded + shed +
//!    abandoned == offered` holds under arbitrary fault schedules, and
//!    the goodput digest holds exactly the in-deadline completions.
//! 3. **Outcome partitioning** — classifying latencies against a deadline
//!    partitions them exactly, and the partitioned digests merge
//!    associatively (canonical bytes).
//! 4. **Legacy byte-identity** — a config without deadlines/retries/
//!    shedding emits an empty-but-present goodput section; stripping it
//!    yields the pre-overload serialization, and the report is engine-
//!    golden (optimized vs reference engine) with overload both off and
//!    on.
//! 5. **Panic isolation** — a panicking sweep arm becomes a `job-panic`
//!    diagnostic report without disturbing its neighbours, at any jobs
//!    count, and is never published to the run cache.
//!
//! The sweep jobs knob and run cache are process-global, so everything
//! that flips `set_jobs` or calls `reset` lives in ONE `#[test]` (same
//! discipline as `tests/sweep.rs`).

use oversub::experiments::{self as exp, ExpOpts};
use oversub::metrics::LatencyDigest;
use oversub::simcore::SimTime;
use oversub::sweep::{self, Sweep};
use oversub::workload::{Workload, WorldBuilder};
use oversub::workloads::admission::{AdmissionPolicy, OverloadParams, RetryPolicy};
use oversub::workloads::memcached::Memcached;
use oversub::workloads::micro::ComputeYield;
use oversub::{
    run_counted, run_labelled, FaultPlan, Mechanisms, RunConfig, RunReport, WatchdogParams,
};
use proptest::prelude::*;

/// The smoke/test overload plane: 3 ms deadline, CoDel shedder, default
/// retry client.
fn codel_overload() -> OverloadParams {
    OverloadParams::disabled()
        .with_deadline_ns(3_000_000)
        .with_admission(AdmissionPolicy::CoDel {
            target_ns: 300_000,
            interval_ns: 500_000,
        })
        .with_retry(RetryPolicy::default())
}

#[test]
fn frontier_is_byte_identical_across_jobs_and_replay() {
    let o = ExpOpts {
        scale: 0.02,
        seed: 11,
    };

    sweep::reset();
    sweep::set_jobs(1);
    let seq = exp::ext_overload_frontier(o).render();

    sweep::reset();
    sweep::set_jobs(4);
    let par = exp::ext_overload_frontier(o).render();
    // Same process, warm cache: every eligible arm replays from JSON.
    let before = sweep::stats();
    let replay = exp::ext_overload_frontier(o).render();
    let after = sweep::stats();
    sweep::set_jobs(0);

    assert_eq!(
        seq, par,
        "ext_overload_frontier differs between jobs=1 and jobs=4"
    );
    assert_eq!(par, replay, "warm-cache replay changed the frontier table");
    assert!(
        after.cache_hits >= before.cache_hits + 32,
        "expected all 32 frontier arms to replay from cache, hits went {} -> {}",
        before.cache_hits,
        after.cache_hits
    );
}

// ---------------------------------------------------------------------
// Accounting and partitioning properties
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The outcome ledger balances under arbitrary load multiples, fault
    /// schedules, and shedding modes — and the goodput digest only ever
    /// holds in-deadline completions.
    #[test]
    fn accounting_balances_under_arbitrary_fault_schedules(
        seed in 0u64..500,
        load in 0.5f64..2.5,
        lost in 0.0f64..0.4,
        jitter_ns in 0u64..300_000,
        shed_on in any::<bool>(),
    ) {
        let rate = 120_000.0 * load;
        let deadline_ns = 3_000_000;
        let mut ov = codel_overload();
        if !shed_on {
            ov = ov.with_admission(AdmissionPolicy::None);
        }
        let cfg = RunConfig::vanilla(Memcached::paper(4, 1, rate).total_cpus())
            .with_mech(Mechanisms::optimized())
            .with_seed(seed)
            .with_max_time(SimTime::from_millis(30))
            .with_faults(
                FaultPlan::default()
                    .lost_wakeups(lost)
                    .timer_jitter(jitter_ns),
            )
            .with_watchdog(WatchdogParams::default())
            .with_max_events(20_000_000)
            .with_overload(ov);
        let r = run_labelled(&mut Memcached::paper(4, 1, rate), &cfg, "prop");
        let gp = &r.goodput;
        prop_assert!(
            gp.balanced(),
            "{} completed + {} exceeded + {} shed + {} abandoned != {} offered",
            gp.completed, gp.deadline_exceeded, gp.shed, gp.abandoned, gp.offered
        );
        prop_assert!(gp.offered > 0, "no requests were offered at all");
        prop_assert_eq!(
            gp.latency.count(), gp.completed,
            "goodput digest size diverged from the completed count"
        );
        if !gp.latency.is_empty() {
            prop_assert!(
                gp.latency.max() <= deadline_ns,
                "goodput digest holds a {} ns sample beyond the {} ns deadline",
                gp.latency.max(), deadline_ns
            );
        }
    }

    /// Classifying latencies against a deadline partitions them exactly,
    /// and the per-shard goodput digests merge associatively.
    #[test]
    fn outcome_partitioned_digests_merge_associatively(
        a in proptest::collection::vec(0u64..4_000_000, 0..30),
        b in proptest::collection::vec(0u64..4_000_000, 0..30),
        c in proptest::collection::vec(0u64..4_000_000, 0..30),
        deadline in 1u64..4_000_000,
    ) {
        let shard = |samples: &[u64]| -> (LatencyDigest, u64, u64) {
            let mut good = LatencyDigest::new();
            let (mut completed, mut exceeded) = (0u64, 0u64);
            for &s in samples {
                if s <= deadline {
                    good.record(s);
                    completed += 1;
                } else {
                    exceeded += 1;
                }
            }
            (good, completed, exceeded)
        };
        let (da, ca, ea) = shard(&a);
        let (db, cb, eb) = shard(&b);
        let (dc, cc, ec) = shard(&c);

        // Exact partition per shard.
        prop_assert_eq!(ca + ea, a.len() as u64);
        prop_assert_eq!(cb + eb, b.len() as u64);
        prop_assert_eq!(cc + ec, c.len() as u64);
        prop_assert_eq!(da.count(), ca);

        let canonical = |d: &LatencyDigest| {
            let mut d = d.clone();
            d.canonicalize();
            d.to_json_value().to_string_compact()
        };
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c), as canonical bytes.
        let mut left = da.clone();
        left.merge(&db);
        left.merge(&dc);
        let mut bc = db.clone();
        bc.merge(&dc);
        let mut right = da.clone();
        right.merge(&bc);
        prop_assert_eq!(canonical(&left), canonical(&right));
        prop_assert_eq!(left.count(), ca + cb + cc);
    }
}

// ---------------------------------------------------------------------
// Legacy byte-identity and engine goldens
// ---------------------------------------------------------------------

#[test]
fn zero_overload_config_serializes_like_the_legacy_baseline() {
    let rate = 100_000.0;
    let cfg = RunConfig::vanilla(Memcached::paper(8, 2, rate).total_cpus())
        .with_mech(Mechanisms::optimized())
        .with_seed(42)
        .with_max_time(SimTime::from_millis(60));

    let disabled = run_labelled(&mut Memcached::paper(8, 2, rate), &cfg, "legacy");
    assert!(
        disabled.goodput.is_empty(),
        "a run without overload configured must emit an empty goodput section"
    );
    let json = disabled.to_json();
    let empty = ",\"goodput\":{\"offered\":0,\"completed\":0,\"deadline_exceeded\":0,\
                 \"shed\":0,\"abandoned\":0,\"retries\":0,\"latency\":{\"count\":0,\
                 \"sum\":0,\"values\":[],\"counts\":[]}}";
    assert!(
        json.contains(empty),
        "empty goodput section missing from serialized report"
    );
    // Strip the goodput key: the remaining bytes are exactly the legacy
    // serialization, and the legacy parser accepts them unchanged.
    let legacy = json.replace(empty, "");
    let reparsed = RunReport::from_json(&legacy).expect("legacy JSON parses");
    assert_eq!(reparsed, disabled, "legacy round-trip diverged");

    // An explicitly-disabled overload plane is the same config.
    let explicit = cfg.clone().with_overload(OverloadParams::disabled());
    let again = run_labelled(&mut Memcached::paper(8, 2, rate), &explicit, "legacy");
    assert_eq!(again.to_json(), json);
}

#[test]
fn overload_reports_are_engine_golden() {
    // Optimized vs reference engine, overload plane on: the mechanism
    // overhaul and the overload layer must agree to the last bit.
    let rate = 250_000.0;
    let cfg = RunConfig::vanilla(Memcached::paper(8, 2, rate).total_cpus())
        .with_mech(Mechanisms::optimized())
        .with_seed(7)
        .with_max_time(SimTime::from_millis(60))
        .with_overload(codel_overload());

    let (opt, opt_events) = run_counted(
        &mut Memcached::paper(8, 2, rate),
        &cfg.clone().with_reference_engine(false),
        "overload",
    );
    let (reference, ref_events) = run_counted(
        &mut Memcached::paper(8, 2, rate),
        &cfg.clone().with_reference_engine(true),
        "overload",
    );
    assert_eq!(
        opt.to_json(),
        reference.to_json(),
        "optimized engine diverged from reference with the overload plane on"
    );
    assert!(opt_events <= ref_events);
    // The run actually exercised the plane: something was offered, and
    // under 1.25x load with CoDel something was shed or retried.
    assert!(opt.goodput.offered > 0);
    assert!(opt.goodput.balanced());
}

// ---------------------------------------------------------------------
// Panic isolation through the sweep
// ---------------------------------------------------------------------

/// A workload whose build panics — the sweep must contain the blast.
#[derive(Clone, Debug)]
struct PanicWorkload;

impl Workload for PanicWorkload {
    fn name(&self) -> &str {
        "panic-probe"
    }
    fn build(&mut self, _w: &mut WorldBuilder) {
        panic!("intentional workload panic");
    }
    fn collect(&self, _report: &mut RunReport) {}
    fn cache_key(&self) -> Option<String> {
        Some("panic-probe".to_string())
    }
}

#[test]
fn sweep_isolates_panicking_arms_deterministically() {
    let submit = |s: &mut Sweep| {
        s.add("ok/1", RunConfig::vanilla(2).with_seed(881_001), || {
            Box::new(ComputeYield::fig2a(2, 2_000_000)) as Box<dyn Workload>
        });
        s.add("boom", RunConfig::vanilla(2).with_seed(881_002), || {
            Box::new(PanicWorkload) as Box<dyn Workload>
        });
        s.add("ok/2", RunConfig::vanilla(2).with_seed(881_003), || {
            Box::new(ComputeYield::fig2a(3, 2_000_000)) as Box<dyn Workload>
        });
    };

    // Silence the default hook for the intentional panics.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut s1 = Sweep::new();
    submit(&mut s1);
    let r1 = s1.run_with_jobs(1);
    let mut s4 = Sweep::new();
    submit(&mut s4);
    let r4 = s4.run_with_jobs(4);
    std::panic::set_hook(prev);

    assert_eq!(r1, r4, "panic isolation broke jobs=1 vs jobs=4 identity");
    assert_eq!(r1.len(), 3);
    assert_eq!(r1[0].label, "ok/1");
    assert_eq!(r1[2].label, "ok/2");
    assert!(
        !r1[0].diagnostics.iter().any(|d| d.kind == "job-panic"),
        "healthy arm caught a panic diagnostic"
    );
    let boom = &r1[1];
    assert_eq!(boom.label, "boom");
    assert_eq!(boom.diagnostics.len(), 1);
    assert_eq!(boom.diagnostics[0].kind, "job-panic");
    assert!(boom.diagnostics[0]
        .detail
        .contains("intentional workload panic"));

    // A crash is not a result: the panicked arm must never be cached.
    let key = sweep::cache_key_for(&RunConfig::vanilla(2).with_seed(881_002), &PanicWorkload)
        .expect("panic probe is cache-eligible");
    assert!(
        !sweep::cache_contains(&key),
        "a panicked arm was published to the run cache"
    );
}
