//! Shape tests for the figure/table harness: each driver must produce the
//! right rows and the orderings the paper's conclusions rest on — run at a
//! tiny scale so the whole file stays fast.

use oversub::experiments::{self as exp, ExpOpts};

fn tiny() -> ExpOpts {
    ExpOpts {
        scale: 0.04,
        seed: 11,
    }
}

/// Parse a CSV cell as f64.
fn cell(line: &str, idx: usize) -> f64 {
    line.split(',')
        .nth(idx)
        .and_then(|v| v.parse().ok())
        .unwrap_or(f64::NAN)
}

#[test]
fn fig01_has_32_rows_with_group_structure() {
    let t = exp::fig01_survey(tiny());
    let csv = t.to_csv();
    let rows: Vec<&str> = csv.lines().skip(1).collect();
    assert_eq!(rows.len(), 32);
    let mut worst_neutral: f64 = 0.0;
    let mut best_suffer = f64::INFINITY;
    for r in &rows {
        let measured = cell(r, 3);
        assert!(measured.is_finite() && measured > 0.0, "bad row: {r}");
        if r.contains("Neutral") {
            worst_neutral = worst_neutral.max(measured);
        }
        if r.contains("Suffers") {
            best_suffer = best_suffer.min(measured);
        }
    }
    assert!(
        best_suffer > 1.1,
        "sufferers must actually suffer: {best_suffer}"
    );
    assert!(
        worst_neutral < 1.25,
        "neutral group must stay near 1.0: {worst_neutral}"
    );
}

#[test]
fn fig04_has_the_three_random_regions() {
    let t = exp::fig04_indirect_cost(tiny());
    let csv = t.to_csv();
    let find = |label: &str| -> f64 {
        csv.lines()
            .find(|l| l.starts_with(label))
            .map(|l| cell(l, 3)) // rnd-r column
            .expect("row exists")
    };
    assert!(
        find("512KB") < -5.0,
        "region A (TLB reach) must be negative"
    );
    assert!(find("4MB") > -5.0, "region B must rise toward positive");
    assert!(
        find("16MB") < -50.0,
        "region C (sTLB reach) must be negative"
    );
    // Sequential column climbs monotonically at the top end.
    let seq_64 = csv
        .lines()
        .find(|l| l.starts_with("64MB"))
        .map(|l| cell(l, 1))
        .unwrap();
    let seq_128 = csv
        .lines()
        .find(|l| l.starts_with("128MB"))
        .map(|l| cell(l, 1))
        .unwrap();
    assert!(seq_128 > seq_64 && seq_64 > 50.0);
}

#[test]
fn fig09_optimized_always_beats_vanilla_oversubscription() {
    let t = exp::fig09_vb_blocking(tiny());
    for row in t.to_csv().lines().skip(1) {
        let name = row.split(',').next().unwrap().to_string();
        if name == "fluidanimate" {
            continue; // the paper's own exception
        }
        let van = cell(row, 2);
        let opt = cell(row, 3);
        assert!(
            opt < van,
            "{name}: optimized {opt} must beat vanilla {van} (8c)"
        );
        let van_ht = cell(row, 5);
        let opt_ht = cell(row, 6);
        assert!(opt_ht < van_ht, "{name}: optimized must beat vanilla (8ht)");
    }
}

#[test]
fn fig13_bwd_recovers_every_lock_and_ple_does_not() {
    use oversub::ExecEnv;
    let t = exp::fig13_spinlocks(ExecEnv::Vm, tiny());
    for row in t.to_csv().lines().skip(1) {
        let name = row.split(',').next().unwrap().to_string();
        let base = cell(row, 1);
        let van = cell(row, 2);
        let ple = cell(row, 3);
        let opt = cell(row, 4);
        assert!(van > 1.5 * base, "{name}: no collapse ({van} vs {base})");
        assert!(
            opt < 0.6 * van,
            "{name}: BWD must recover most of the collapse"
        );
        // PLE barely helps: identical to vanilla for bare loops, and at
        // most a modest improvement for PAUSE-based ones (the adaptive
        // window quickly backs off) — never approaching BWD.
        let pause_based = matches!(name.as_str(), "malth" | "ticket" | "pthread");
        if pause_based {
            assert!(
                ple > 0.55 * van && ple >= opt,
                "{name}: PLE must stay far behind BWD ({ple} vs van {van}, opt {opt})"
            );
        } else {
            assert!(
                (ple - van).abs() <= 0.02 * van.max(0.01),
                "{name}: PLE must equal vanilla for bare loops ({ple} vs {van})"
            );
        }
    }
}

#[test]
fn table2_and_3_report_bwd_accuracy() {
    let t2 = exp::table2_bwd_tp(tiny());
    assert_eq!(t2.len(), 10);
    for row in t2.to_csv().lines().skip(1) {
        assert!(cell(row, 3) > 90.0, "low sensitivity: {row}");
    }
    let t3 = exp::table3_bwd_fp(tiny());
    assert_eq!(t3.len(), 8);
    for row in t3.to_csv().lines().skip(1) {
        assert!(cell(row, 3) > 99.0, "low specificity: {row}");
        assert!(
            cell(row, 4) < 3.0,
            "timer overhead above the paper's 3%: {row}"
        );
    }
}

#[test]
fn fig15_optimized_is_the_best_arm_everywhere() {
    let t = exp::fig15_shfllock(tiny());
    for row in t.to_csv().lines().skip(1) {
        let opt = cell(row, 5);
        for arm in 1..=4 {
            assert!(
                opt <= cell(row, arm) + 0.05,
                "optimized must match or beat every lock design: {row}"
            );
        }
    }
}

#[test]
fn ablation_tables_have_expected_shapes() {
    let t = exp::ablation_bwd_interval(tiny());
    assert_eq!(t.len(), 6);
    let t = exp::ablation_vb_auto_disable(tiny());
    assert_eq!(t.len(), 2);
    let t = exp::ablation_hugepages(tiny());
    assert_eq!(t.len(), 3);
    let t = exp::ext_pipeline_cascade(tiny());
    assert_eq!(t.len(), 4);
}
