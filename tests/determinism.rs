//! Golden determinism test for the engine hot-path overhaul.
//!
//! The optimized engine (slab-cancellation event queue + timer wheel,
//! cached runqueue picks, resched coalescing) must produce **bit-identical
//! metrics** to the reference engine (classic heap+HashSet queue, uncached
//! scans, no coalescing) on every workload class the tier-1 suite covers.
//! Reports are compared through their canonical JSON serialization, which
//! is integer-exact, so equality here means every counter, histogram
//! bucket, and timing field matches to the last bit.

use oversub::ksync::WaitMode;
use oversub::metrics::MechCounters;
use oversub::simcore::SimTime;
use oversub::task::{SpinSig, TaskId};
use oversub::workload::Workload;
use oversub::workloads::memcached::Memcached;
use oversub::workloads::pipeline::{SpinPipeline, WaitFlavor};
use oversub::workloads::skeletons::{BenchProfile, Skeleton};
use oversub::workloads::webserving::WebServing;
use oversub::{
    run, run_counted, ElasticEvent, ExecEnv, MachineSpec, Mechanism, Mechanisms, RunConfig,
    SpinExitVerdict,
};
use proptest::prelude::*;
use std::any::Any;
use std::sync::{Arc, Mutex};

/// Run one workload twice — optimized vs reference engine — and assert
/// byte-identical report JSON. Returns the two event counts.
fn assert_golden(mut mk: impl FnMut() -> Box<dyn Workload>, cfg: &RunConfig, label: &str) {
    let optimized = {
        let mut wl = mk();
        run_counted(&mut *wl, &cfg.clone().with_reference_engine(false), label)
    };
    let reference = {
        let mut wl = mk();
        run_counted(&mut *wl, &cfg.clone().with_reference_engine(true), label)
    };
    assert_eq!(
        optimized.0.to_json(),
        reference.0.to_json(),
        "{label}: optimized engine diverged from reference"
    );
    // Coalescing may only ever *remove* events, never add.
    assert!(
        optimized.1 <= reference.1,
        "{label}: optimized engine processed more events ({} > {})",
        optimized.1,
        reference.1
    );
}

#[test]
fn memcached_reports_are_bit_identical() {
    // The machine must host server cores plus the client threads.
    let cpus = Memcached::paper(16, 8, 40_000.0).total_cpus();
    let cfg = RunConfig::vanilla(cpus)
        .with_mech(Mechanisms::optimized())
        .with_seed(42)
        .with_max_time(SimTime::from_millis(120));
    assert_golden(
        || Box::new(Memcached::paper(16, 8, 40_000.0)),
        &cfg,
        "memcached/16T/8c",
    );
}

#[test]
fn pipeline_reports_are_bit_identical_across_mechanisms() {
    for (mech, name) in [
        (Mechanisms::vanilla(), "vanilla"),
        (Mechanisms::bwd_only(), "bwd"),
        (Mechanisms::optimized(), "optimized"),
    ] {
        let cfg = RunConfig::vanilla(4)
            .with_machine(MachineSpec::PaperN(4))
            .with_mech(mech)
            .with_seed(5);
        assert_golden(
            || Box::new(SpinPipeline::new(16, 30, WaitFlavor::Flags)),
            &cfg,
            &format!("pipeline/{name}"),
        );
    }
}

#[test]
fn skeleton_benchmarks_are_bit_identical() {
    for bench in ["fluidanimate", "streamcluster"] {
        let profile = BenchProfile::by_name(bench).expect("known benchmark");
        let cfg = RunConfig::vanilla(8)
            .with_machine(MachineSpec::Paper8Cores)
            .with_mech(Mechanisms::optimized())
            .with_seed(7);
        assert_golden(
            || Box::new(Skeleton::scaled(profile, 16, 0.05).with_salt(7)),
            &cfg,
            &format!("skeleton/{bench}"),
        );
    }
}

#[test]
fn idle_heavy_machine_is_bit_identical() {
    // 8 threads on 64 CPUs: the event mix is dominated by periodic BWD
    // timers and balance passes on idle cores, which is exactly where the
    // timer wheel and the waiter-board O(1) early-outs (idle_pull,
    // periodic_balance) fire most — this pins their equivalence proofs.
    let profile = BenchProfile::by_name("streamcluster").expect("known benchmark");
    let cfg = RunConfig::vanilla(64)
        .with_machine(MachineSpec::PaperN(64))
        .with_mech(Mechanisms::optimized())
        .with_seed(11)
        .with_max_time(SimTime::from_millis(120));
    assert_golden(
        || Box::new(Skeleton::scaled(profile, 8, 0.60).with_salt(11)),
        &cfg,
        "skeleton/8T/64c",
    );
}

#[test]
fn web_serving_with_elasticity_is_bit_identical() {
    // Exercises the elastic path (core count changes mid-run) plus epoll.
    let cpus = WebServing::new(24, 8, 50_000.0).total_cpus();
    let mut cfg = RunConfig::vanilla(cpus)
        .with_mech(Mechanisms::optimized())
        .with_seed(11)
        .with_max_time(SimTime::from_millis(80));
    cfg.elastic = vec![
        ElasticEvent {
            at: SimTime::from_millis(20),
            cores: 4,
        },
        ElasticEvent {
            at: SimTime::from_millis(50),
            cores: 8,
        },
    ];
    assert_golden(
        || Box::new(WebServing::new(24, 8, 50_000.0)),
        &cfg,
        "web/24T/8c",
    );
}

/// An active out-of-tree mechanism for the golden tests: throttle any
/// spin segment after a fixed window (it deschedules tasks, so it truly
/// perturbs the schedule — both engines must agree on every perturbation).
struct ThrottleSpin {
    window_ns: u64,
    exits: u64,
}

impl Mechanism for ThrottleSpin {
    fn name(&self) -> &'static str {
        "throttle"
    }
    fn on_spin_segment(
        &mut self,
        _cpu: usize,
        _tid: TaskId,
        _sig: &SpinSig,
        _env: ExecEnv,
        now: SimTime,
    ) -> Option<SimTime> {
        Some(now + self.window_ns)
    }
    fn on_spin_exit(&mut self, _cpu: usize, _tid: TaskId) -> SpinExitVerdict {
        self.exits += 1;
        SpinExitVerdict {
            charge_ns: 900,
            set_skip: false,
        }
    }
    fn counters(&self) -> MechCounters {
        MechCounters {
            decisions: self.exits,
            spin_exits: self.exits,
            ..MechCounters::named("throttle")
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

#[test]
fn custom_mechanism_runs_are_bit_identical() {
    // A custom mechanism registered through the public API must replay
    // identically on both engines: the factory builds a fresh instance
    // per engine, so the reference twin starts from the same state.
    let cfg = RunConfig::vanilla(4)
        .with_machine(MachineSpec::PaperN(4))
        .with_seed(23)
        .with_mechanism(|| {
            Box::new(ThrottleSpin {
                window_ns: 80_000,
                exits: 0,
            })
        });
    assert_golden(
        || Box::new(SpinPipeline::new(12, 24, WaitFlavor::Flags)),
        &cfg,
        "pipeline/custom-throttle",
    );
    // And it must actually have fired, or the test proves nothing.
    let mut wl = SpinPipeline::new(12, 24, WaitFlavor::Flags);
    let r = run(&mut wl, &cfg);
    assert!(
        r.mech("throttle").map(|m| m.spin_exits).unwrap_or(0) > 0,
        "custom mechanism never fired"
    );
}

#[test]
fn vm_ple_runs_are_bit_identical() {
    let cfg = RunConfig::vanilla(4)
        .with_machine(MachineSpec::PaperN(4))
        .with_mech(Mechanisms::ple_only())
        .with_seed(13)
        .in_vm();
    assert_golden(
        || {
            Box::new(SpinPipeline::new(
                12,
                20,
                WaitFlavor::SpinLock(oversub::locks::SpinPolicy::ttas()),
            ))
        },
        &cfg,
        "pipeline/ple-vm",
    );
}

// ---------------------------------------------------------------------
// Hook invocation order is deterministic
// ---------------------------------------------------------------------

/// A passive observer mechanism: records every hook invocation (with its
/// arguments) into a shared log and never changes any verdict, so it can
/// ride along any configuration without perturbing the run.
struct Recorder {
    log: Arc<Mutex<Vec<String>>>,
}

impl Mechanism for Recorder {
    fn name(&self) -> &'static str {
        "recorder"
    }
    fn on_block(&mut self, cpu: usize, tid: TaskId, mode: WaitMode) {
        self.log
            .lock()
            .unwrap()
            .push(format!("block cpu={cpu} tid={} mode={mode:?}", tid.0));
    }
    fn on_wake(&mut self, tid: TaskId, mode: WaitMode) {
        self.log
            .lock()
            .unwrap()
            .push(format!("wake tid={} mode={mode:?}", tid.0));
    }
    fn on_pick(&mut self, cpu: usize, skips_released: u64) {
        self.log
            .lock()
            .unwrap()
            .push(format!("pick cpu={cpu} released={skips_released}"));
    }
    fn on_slice_expiry(&mut self, cpu: usize, tid: TaskId) {
        self.log
            .lock()
            .unwrap()
            .push(format!("slice cpu={cpu} tid={}", tid.0));
    }
    fn on_spin_segment(
        &mut self,
        cpu: usize,
        tid: TaskId,
        sig: &SpinSig,
        env: ExecEnv,
        now: SimTime,
    ) -> Option<SimTime> {
        self.log.lock().unwrap().push(format!(
            "spin cpu={cpu} tid={} pause={} env={env:?} now={now}",
            tid.0, sig.uses_pause
        ));
        None
    }
    fn on_elastic_change(&mut self, cores: usize) {
        self.log
            .lock()
            .unwrap()
            .push(format!("elastic cores={cores}"));
    }
    fn counters(&self) -> MechCounters {
        MechCounters::named("recorder")
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Run one SpinPipeline config with a Recorder appended to the pipeline
/// and return the full hook log.
fn hook_log(
    stages: usize,
    items: usize,
    cores: usize,
    mech: Mechanisms,
    seed: u64,
    vm: bool,
) -> Vec<String> {
    let log = Arc::new(Mutex::new(Vec::new()));
    let handle = Arc::clone(&log);
    let mut cfg = RunConfig::vanilla(cores)
        .with_machine(MachineSpec::PaperN(cores))
        .with_mech(mech)
        .with_seed(seed)
        .with_mechanism(move || {
            Box::new(Recorder {
                log: Arc::clone(&handle),
            })
        });
    if vm {
        cfg = cfg.in_vm();
    }
    let mut wl = SpinPipeline::new(stages, items, WaitFlavor::Flags);
    run(&mut wl, &cfg);
    // The factory closure inside `cfg` keeps a handle alive; read through.
    let out = log.lock().unwrap().clone();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The exact sequence of hook invocations — names, arguments, and
    /// order — replays identically for identical configurations, under
    /// random mechanism pipelines, core counts, seeds, and environments.
    #[test]
    fn hook_order_is_deterministic(
        stages in 4usize..10,
        items in 6usize..20,
        cores in 2usize..6,
        vb in any::<bool>(),
        bwd in any::<bool>(),
        ple in any::<bool>(),
        vm in any::<bool>(),
        seed in any::<u64>(),
    ) {
        let mech = Mechanisms { vb, vb_auto_disable: true, bwd, ple: ple && vm, neighbour: false };
        let a = hook_log(stages, items, cores, mech, seed, vm);
        let b = hook_log(stages, items, cores, mech, seed, vm);
        prop_assert!(!a.is_empty(), "recorder saw no hooks at all");
        prop_assert_eq!(a, b);
    }
}
