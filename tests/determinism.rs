//! Golden determinism test for the engine hot-path overhaul.
//!
//! The optimized engine (slab-cancellation event queue + timer wheel,
//! cached runqueue picks, resched coalescing) must produce **bit-identical
//! metrics** to the reference engine (classic heap+HashSet queue, uncached
//! scans, no coalescing) on every workload class the tier-1 suite covers.
//! Reports are compared through their canonical JSON serialization, which
//! is integer-exact, so equality here means every counter, histogram
//! bucket, and timing field matches to the last bit.

use oversub::simcore::SimTime;
use oversub::workload::Workload;
use oversub::workloads::memcached::Memcached;
use oversub::workloads::pipeline::{SpinPipeline, WaitFlavor};
use oversub::workloads::skeletons::{BenchProfile, Skeleton};
use oversub::workloads::webserving::WebServing;
use oversub::{run_counted, ElasticEvent, MachineSpec, Mechanisms, RunConfig};

/// Run one workload twice — optimized vs reference engine — and assert
/// byte-identical report JSON. Returns the two event counts.
fn assert_golden(mut mk: impl FnMut() -> Box<dyn Workload>, cfg: &RunConfig, label: &str) {
    let optimized = {
        let mut wl = mk();
        run_counted(&mut *wl, &cfg.clone().with_reference_engine(false), label)
    };
    let reference = {
        let mut wl = mk();
        run_counted(&mut *wl, &cfg.clone().with_reference_engine(true), label)
    };
    assert_eq!(
        optimized.0.to_json(),
        reference.0.to_json(),
        "{label}: optimized engine diverged from reference"
    );
    // Coalescing may only ever *remove* events, never add.
    assert!(
        optimized.1 <= reference.1,
        "{label}: optimized engine processed more events ({} > {})",
        optimized.1,
        reference.1
    );
}

#[test]
fn memcached_reports_are_bit_identical() {
    // The machine must host server cores plus the client threads.
    let cpus = Memcached::paper(16, 8, 40_000.0).total_cpus();
    let cfg = RunConfig::vanilla(cpus)
        .with_mech(Mechanisms::optimized())
        .with_seed(42)
        .with_max_time(SimTime::from_millis(120));
    assert_golden(
        || Box::new(Memcached::paper(16, 8, 40_000.0)),
        &cfg,
        "memcached/16T/8c",
    );
}

#[test]
fn pipeline_reports_are_bit_identical_across_mechanisms() {
    for (mech, name) in [
        (Mechanisms::vanilla(), "vanilla"),
        (Mechanisms::bwd_only(), "bwd"),
        (Mechanisms::optimized(), "optimized"),
    ] {
        let cfg = RunConfig::vanilla(4)
            .with_machine(MachineSpec::PaperN(4))
            .with_mech(mech)
            .with_seed(5);
        assert_golden(
            || Box::new(SpinPipeline::new(16, 30, WaitFlavor::Flags)),
            &cfg,
            &format!("pipeline/{name}"),
        );
    }
}

#[test]
fn skeleton_benchmarks_are_bit_identical() {
    for bench in ["fluidanimate", "streamcluster"] {
        let profile = BenchProfile::by_name(bench).expect("known benchmark");
        let cfg = RunConfig::vanilla(8)
            .with_machine(MachineSpec::Paper8Cores)
            .with_mech(Mechanisms::optimized())
            .with_seed(7);
        assert_golden(
            || Box::new(Skeleton::scaled(profile, 16, 0.05).with_salt(7)),
            &cfg,
            &format!("skeleton/{bench}"),
        );
    }
}

#[test]
fn idle_heavy_machine_is_bit_identical() {
    // 8 threads on 64 CPUs: the event mix is dominated by periodic BWD
    // timers and balance passes on idle cores, which is exactly where the
    // timer wheel and the waiter-board O(1) early-outs (idle_pull,
    // periodic_balance) fire most — this pins their equivalence proofs.
    let profile = BenchProfile::by_name("streamcluster").expect("known benchmark");
    let cfg = RunConfig::vanilla(64)
        .with_machine(MachineSpec::PaperN(64))
        .with_mech(Mechanisms::optimized())
        .with_seed(11)
        .with_max_time(SimTime::from_millis(120));
    assert_golden(
        || Box::new(Skeleton::scaled(profile, 8, 0.60).with_salt(11)),
        &cfg,
        "skeleton/8T/64c",
    );
}

#[test]
fn web_serving_with_elasticity_is_bit_identical() {
    // Exercises the elastic path (core count changes mid-run) plus epoll.
    let cpus = WebServing::new(24, 8, 50_000.0).total_cpus();
    let mut cfg = RunConfig::vanilla(cpus)
        .with_mech(Mechanisms::optimized())
        .with_seed(11)
        .with_max_time(SimTime::from_millis(80));
    cfg.elastic = vec![
        ElasticEvent {
            at: SimTime::from_millis(20),
            cores: 4,
        },
        ElasticEvent {
            at: SimTime::from_millis(50),
            cores: 8,
        },
    ];
    assert_golden(
        || Box::new(WebServing::new(24, 8, 50_000.0)),
        &cfg,
        "web/24T/8c",
    );
}

#[test]
fn vm_ple_runs_are_bit_identical() {
    let cfg = RunConfig::vanilla(4)
        .with_machine(MachineSpec::PaperN(4))
        .with_mech(Mechanisms::ple_only())
        .with_seed(13)
        .in_vm();
    assert_golden(
        || {
            Box::new(SpinPipeline::new(
                12,
                20,
                WaitFlavor::SpinLock(oversub::locks::SpinPolicy::ttas()),
            ))
        },
        &cfg,
        "pipeline/ple-vm",
    );
}
