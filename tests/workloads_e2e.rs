//! End-to-end tests of the pipeline and web-serving workloads: the
//! paper's cascading-delay story and the cloud-workload story.

use oversub::metrics::RunReport;
use oversub::simcore::SimTime;
use oversub::workloads::pipeline::{SpinPipeline, WaitFlavor};
use oversub::workloads::webserving::WebServing;
use oversub::{run_labelled, MachineSpec, Mechanisms, RunConfig};

fn run_pipeline(stages: usize, cores: usize, flavor: WaitFlavor, mech: Mechanisms) -> RunReport {
    let mut wl = SpinPipeline::new(stages, 60, flavor);
    let cfg = RunConfig::vanilla(cores)
        .with_machine(MachineSpec::PaperN(cores))
        .with_mech(mech)
        .with_seed(5);
    run_labelled(&mut wl, &cfg, "pipeline")
}

#[test]
fn pipeline_cascades_under_oversubscription_and_bwd_rescues() {
    // 8 stages on 8 cores: the wave flows freely.
    let under = run_pipeline(8, 8, WaitFlavor::Flags, Mechanisms::vanilla());
    // 32 stages on 8 cores: one descheduled stage delays all downstream
    // stages — the paper's cascading collapse.
    let over = run_pipeline(32, 8, WaitFlavor::Flags, Mechanisms::vanilla());
    let bwd = run_pipeline(32, 8, WaitFlavor::Flags, Mechanisms::bwd_only());

    // The oversubscribed pipeline has 4x the total work; anything beyond
    // ~6x the undersubscribed time is cascade, not work.
    let ratio = over.makespan_ns as f64 / under.makespan_ns as f64;
    assert!(ratio > 5.5, "expected a cascade, got {ratio:.1}x");
    assert!(
        bwd.makespan_ns * 2 < over.makespan_ns,
        "BWD should break the cascade: {} vs {}",
        bwd.makespan_ns,
        over.makespan_ns
    );
    assert!(bwd.bwd.detections > 0);
}

#[test]
fn pipeline_spinlock_flavor_works_for_every_policy() {
    use oversub::locks::SpinPolicy;
    for policy in [SpinPolicy::mcs(), SpinPolicy::ttas(), SpinPolicy::cna()] {
        let r = run_pipeline(8, 8, WaitFlavor::SpinLock(policy), Mechanisms::vanilla());
        assert!(
            r.makespan_ns < 60_000_000_000,
            "{}-guarded pipeline stalled",
            policy.name
        );
    }
}

fn run_web(workers: usize, cores: usize, mech: Mechanisms) -> RunReport {
    let mut wl = WebServing::new(workers, cores, 60_000.0);
    let cpus = wl.total_cpus();
    let cfg = RunConfig::vanilla(cpus)
        .with_mech(mech)
        .with_seed(7)
        .with_max_time(SimTime::from_millis(600));
    run_labelled(&mut wl, &cfg, "web")
}

#[test]
fn web_serving_tails_shrink_under_vb() {
    let base = run_web(4, 4, Mechanisms::vanilla());
    let over = run_web(16, 4, Mechanisms::vanilla());
    let opt = run_web(16, 4, Mechanisms::optimized());
    assert!(base.completed_ops > 5_000, "server must serve");
    assert!(over.completed_ops > 5_000);
    // Oversubscription barely moves throughput (loosely-coupled threads)…
    let tput_drop = 1.0 - over.completed_ops as f64 / base.completed_ops as f64;
    assert!(
        tput_drop < 0.15,
        "throughput should hold for cloud workloads: drop {tput_drop:.2}"
    );
    // …and VB keeps the p99 at or below the oversubscribed vanilla tail.
    let p99_over = over.latency.percentile(99.0);
    let p99_opt = opt.latency.percentile(99.0);
    assert!(
        p99_opt <= p99_over,
        "VB should not worsen the tail: {p99_opt} vs {p99_over}"
    );
    // Each request sleeps twice (epoll + backend), so VB must be exercised.
    assert!(opt.blocking.virtual_waits > 0);
}

#[test]
fn web_serving_scales_out_with_more_cores() {
    let small = run_web(16, 4, Mechanisms::optimized());
    let big = {
        let mut wl = WebServing::new(16, 16, 200_000.0);
        let cpus = wl.total_cpus();
        let cfg = RunConfig::vanilla(cpus)
            .with_mech(Mechanisms::optimized())
            .with_seed(7)
            .with_max_time(SimTime::from_millis(600));
        run_labelled(&mut wl, &cfg, "web-16c")
    };
    // The same 16 threads serve >2.5x the load when cores quadruple —
    // the oversubscription-for-elasticity payoff.
    assert!(
        big.completed_ops as f64 > 2.2 * small.completed_ops as f64,
        "expansion failed: {} vs {}",
        big.completed_ops,
        small.completed_ops
    );
}

#[test]
fn forkjoin_terminates_in_both_modes_and_oversubscription_pays_off() {
    use oversub::workloads::forkjoin::ForkJoin;
    let run = |active: usize, cores: usize, mech: Mechanisms| {
        let mut wl = ForkJoin::new(32, active, 60, 128, 40_000);
        let cfg = RunConfig::vanilla(cores)
            .with_machine(MachineSpec::PaperN(cores))
            .with_mech(mech)
            .with_seed(3);
        run_labelled(&mut wl, &cfg, "fj")
    };
    // Everything terminates (pool retirement works).
    let dynamic8 = run(8, 8, Mechanisms::vanilla());
    let naive8 = run(32, 8, Mechanisms::vanilla());
    let opt8 = run(32, 8, Mechanisms::optimized());
    for r in [&dynamic8, &naive8, &opt8] {
        assert!(r.makespan_ns < 100_000_000_000, "fork-join stalled");
    }
    // Fully-activated 32 threads on 16 cores beat the dynamic-8 pool at 8:
    // the elasticity payoff of oversubscription.
    let opt16 = run(32, 16, Mechanisms::optimized());
    assert!(
        opt16.makespan_ns < dynamic8.makespan_ns,
        "32 active on 16 cores ({}) should beat 8 active on 8 ({})",
        opt16.makespan_ns,
        dynamic8.makespan_ns
    );
}
