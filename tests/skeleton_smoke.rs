//! Smoke coverage: every one of the 32 benchmark skeletons builds and
//! terminates at every thread count and under every mechanism — nothing in
//! the library may deadlock or stall.

use oversub::workload::Workload;
use oversub::workloads::skeletons::{BenchProfile, Skeleton, SyncKind};
use oversub::{run_labelled, MachineSpec, Mechanisms, RunConfig};

fn run_one(profile: BenchProfile, threads: usize, mech: Mechanisms) -> u64 {
    let mut wl = Skeleton::scaled(profile, threads, 0.02).with_salt(1);
    let cfg = RunConfig::vanilla(8)
        .with_machine(MachineSpec::Paper8Cores)
        .with_mech(mech)
        .with_seed(9);
    let label = wl.name().to_string();
    run_labelled(&mut wl, &cfg, &label).makespan_ns
}

#[test]
fn all_skeletons_terminate_at_8_threads_vanilla() {
    for p in BenchProfile::all() {
        let ns = run_one(p, 8, Mechanisms::vanilla());
        assert!(
            ns < 200_000_000_000,
            "{} stalled at 8T vanilla: {ns} ns",
            p.name
        );
    }
}

#[test]
fn all_skeletons_terminate_at_32_threads_optimized() {
    for p in BenchProfile::all() {
        let ns = run_one(p, 32, Mechanisms::optimized());
        assert!(
            ns < 200_000_000_000,
            "{} stalled at 32T optimized: {ns} ns",
            p.name
        );
    }
}

#[test]
fn all_skeletons_terminate_at_32_threads_vanilla() {
    for p in BenchProfile::all() {
        let ns = run_one(p, 32, Mechanisms::vanilla());
        assert!(
            ns < 200_000_000_000,
            "{} stalled at 32T vanilla: {ns} ns",
            p.name
        );
    }
}

#[test]
fn odd_thread_counts_work() {
    // Thread counts that do not divide the core count exercise uneven
    // placement and the balancer.
    for p in [
        BenchProfile::by_name("streamcluster").unwrap(),
        BenchProfile::by_name("lu").unwrap(),
        BenchProfile::by_name("canneal").unwrap(),
    ] {
        for threads in [3usize, 7, 13, 27] {
            let ns = run_one(p, threads, Mechanisms::optimized());
            assert!(ns < 200_000_000_000, "{}@{threads}T stalled", p.name);
        }
    }
}

#[test]
fn lock_substituted_barriers_terminate_for_all_kinds() {
    use oversub::locks::MutexKind;
    let p = BenchProfile::by_name("ocean").unwrap();
    for kind in [
        MutexKind::Pthread,
        MutexKind::Mutexee { spin_ns: 50_000 },
        MutexKind::McsTp { spin_ns: 50_000 },
        MutexKind::Shfllock { spin_ns: 50_000 },
    ] {
        let mut wl = Skeleton::scaled(p, 32, 0.02).with_barrier_mutex(kind);
        let cfg = RunConfig::vanilla(8)
            .with_machine(MachineSpec::Paper8Cores)
            .with_seed(9);
        let r = run_labelled(&mut wl, &cfg, kind.label());
        assert!(
            r.makespan_ns < 200_000_000_000,
            "{:?} barrier stalled",
            kind
        );
    }
}

#[test]
fn every_sync_kind_is_exercised_by_the_suite() {
    use std::collections::HashSet;
    let kinds: HashSet<std::mem::Discriminant<SyncKind>> = BenchProfile::all()
        .iter()
        .map(|p| std::mem::discriminant(&p.sync))
        .collect();
    assert_eq!(kinds.len(), 5, "all five sync structures represented");
}
