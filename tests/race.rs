//! Happens-before race detector + schedule-robustness integration tests.
//!
//! Four guarantees are pinned here:
//!
//! 1. **Race detection is deterministic** — the canonical unsynchronized
//!    flag-spin workload reports exactly one `data-race` diagnostic
//!    naming both access sites, identically across repeated runs.
//! 2. **The detector is pure observation** — arming it on golden-style
//!    configurations changes nothing but the diagnostics list: with
//!    diagnostics cleared, the reports are byte-identical through the
//!    canonical JSON.
//! 3. **No false positives** — every golden workload synchronizes its
//!    shared state through release/acquire channels (futexes, locks,
//!    sync flags, epoll), so the armed detector stays silent on them.
//! 4. **Schedule robustness** — perturbing event-queue tie-breaks with a
//!    seeded salt leaves golden reports byte-identical: no simulated
//!    outcome hinges on insertion-order coincidences.
use oversub::simcore::SimTime;
use oversub::workloads::memcached::Memcached;
use oversub::workloads::micro::{Primitive, PrimitiveStress, RacyFlagSpin};
use oversub::workloads::pipeline::{SpinPipeline, WaitFlavor};
use oversub::workloads::ForkJoin;
use oversub::{certify_schedules, run, MachineSpec, Mechanisms, RunConfig, RunReport};
use proptest::prelude::*;

fn racy_cfg() -> RunConfig {
    RunConfig::vanilla(2)
        .with_machine(MachineSpec::PaperN(2))
        .with_seed(1)
        .with_max_time(SimTime::from_millis(50))
        .with_race_detector()
}

fn kinds(report: &RunReport) -> Vec<&str> {
    report.diagnostics.iter().map(|d| d.kind.as_str()).collect()
}

/// A named workload case: label, CPU count, and a fresh-instance factory.
type WorkloadCase<'a> = (
    &'a str,
    usize,
    Box<dyn Fn() -> Box<dyn oversub::workload::Workload>>,
);

fn golden_cases<'a>() -> Vec<WorkloadCase<'a>> {
    let mc_cpus = Memcached::paper(16, 8, 40_000.0).total_cpus();
    vec![
        (
            "pipeline",
            8,
            Box::new(|| Box::new(SpinPipeline::new(12, 40, WaitFlavor::Flags))),
        ),
        (
            "memcached",
            mc_cpus,
            Box::new(|| Box::new(Memcached::paper(16, 8, 40_000.0))),
        ),
        (
            "mutex-stress",
            8,
            Box::new(|| Box::new(PrimitiveStress::new(12, 200, Primitive::Mutex, 2_000))),
        ),
    ]
}

fn golden_cfg(cpus: usize) -> RunConfig {
    RunConfig::vanilla(cpus)
        .with_machine(MachineSpec::PaperN(cpus))
        .with_mech(Mechanisms::optimized())
        .with_seed(42)
        .with_max_time(SimTime::from_millis(150))
}

/// The canonical racy workload must produce exactly one `data-race`
/// diagnostic naming both unsynchronized access sites and their vector
/// clocks, and the run must still complete (the race "works" at runtime).
#[test]
fn racy_flag_spin_reports_one_canonical_race() {
    let report = run(&mut RacyFlagSpin::default(), &racy_cfg());
    let races: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.kind == "data-race")
        .collect();
    assert_eq!(
        races.len(),
        1,
        "expected exactly one data-race; got {:?}",
        kinds(&report)
    );
    let d = races[0];
    assert!(
        d.detail.contains("racy-writer") && d.detail.contains("racy-spinner"),
        "race must name both access sites: {}",
        d.detail
    );
    assert!(
        d.detail.contains("neither happens-before the other"),
        "race must state the missing ordering: {}",
        d.detail
    );
    assert!(
        d.detail.contains("clocks {"),
        "race must carry clock provenance: {}",
        d.detail
    );
    assert_eq!(report.tasks.tasks, 2, "both racy threads ran");
    assert!(
        report.makespan_ns < SimTime::from_millis(50).as_nanos(),
        "the racy run still completes (the store does release the spinner)"
    );
}

/// The race analysis is bit-deterministic: two identical runs serialize to
/// the same canonical JSON, diagnostics included.
#[test]
fn race_analysis_is_deterministic() {
    let a = run(&mut RacyFlagSpin::default(), &racy_cfg()).to_json();
    let b = run(&mut RacyFlagSpin::default(), &racy_cfg()).to_json();
    assert_eq!(a, b, "race-armed run is not reproducible");
}

/// Golden bit-identity: detector on vs off over golden-style configs must
/// agree on every byte of the report once diagnostics are set aside, and
/// the armed detector must report zero races on them (their shared state
/// is ordered by futex/lock/flag release-acquire edges by construction).
#[test]
fn race_detector_is_observation_only_and_silent_on_golden_configs() {
    for (name, cpus, mk) in &golden_cases() {
        let cfg = golden_cfg(*cpus);
        let mut plain = run(&mut *mk(), &cfg);
        let mut armed = run(&mut *mk(), &cfg.clone().with_race_detector());
        assert!(
            !armed.diagnostics.iter().any(|d| d.kind == "data-race"),
            "{name}: false positive on a golden workload"
        );
        plain.diagnostics.clear();
        armed.diagnostics.clear();
        assert_eq!(
            plain.to_json(),
            armed.to_json(),
            "{name}: race detector perturbed the run beyond diagnostics"
        );
    }
}

/// Schedule-robustness certification at small N (the CI `race_smoke` bin
/// runs the same harness at `--schedules 8`): every schedule is either
/// byte-identical to the pinned tie order or explained by a
/// `schedule-divergence` diagnostic naming the salt and the first
/// diverging report field. The flag pipeline — whose cross-stage
/// hand-offs are all explicit flag releases — must certify fully clean;
/// the racy micro-workload must too (its race is a happens-before gap,
/// not a tie-order dependence).
#[test]
fn schedules_certify_clean_or_explained() {
    for (name, cpus, mk) in &golden_cases() {
        let cert = certify_schedules(&mut || mk(), &golden_cfg(*cpus), 3);
        for d in &cert.divergences {
            assert_eq!(d.kind, "schedule-divergence");
            assert!(
                d.detail.contains("tie-break salt") && d.detail.contains("near field"),
                "{name}: divergence must carry salt and field provenance: {}",
                d.detail
            );
        }
        if *name == "pipeline" {
            assert!(
                cert.certified(),
                "{name}: flag pipeline must be schedule-robust: {:?}",
                cert.divergences
            );
        }
    }
    let cert = certify_schedules(&mut || Box::new(RacyFlagSpin::default()), &racy_cfg(), 4);
    assert!(
        cert.certified(),
        "racy flag spin must certify (race ≠ tie-order dependence): {:?}",
        cert.divergences
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Fork-join and primitive-stress workloads synchronize all shared
    /// state, so the armed detector must stay silent for any seed,
    /// thread count, or primitive.
    #[test]
    fn synchronized_workloads_never_report(
        seed in any::<u64>(),
        threads in 2usize..12,
        rounds in 10usize..60,
        prim in prop_oneof![
            Just(Primitive::Mutex),
            Just(Primitive::Cond),
            Just(Primitive::Barrier),
        ],
        forkjoin in any::<bool>(),
    ) {
        let cfg = RunConfig::vanilla(4)
            .with_machine(MachineSpec::PaperN(4))
            .with_mech(Mechanisms::optimized())
            .with_seed(seed)
            .with_max_time(SimTime::from_millis(80))
            .with_race_detector()
            .with_max_events(5_000_000);
        let report = if forkjoin {
            run(&mut ForkJoin::region_heavy(threads, threads, 3), &cfg)
        } else {
            run(&mut PrimitiveStress::new(threads, rounds, prim, 1_500), &cfg)
        };
        for d in &report.diagnostics {
            prop_assert!(
                d.kind != "data-race",
                "false positive on synchronized workload: {}", d.detail
            );
        }
    }
}
