//! Calibration tests: the headline shapes of the paper must emerge from
//! the model — Figure 1's three groups, Figure 9's VB recovery, Figure
//! 13/14's BWD recovery, and Figure 12's tail-latency collapse.

use oversub::metrics::RunReport;
use oversub::simcore::SimTime;
use oversub::{run_labelled, MachineSpec, Mechanisms, RunConfig};
use oversub_workloads::memcached::Memcached;
use oversub_workloads::skeletons::{BenchProfile, Skeleton};

/// Run one benchmark skeleton at a reduced phase scale.
fn run_skel(name: &str, threads: usize, cores: usize, mech: Mechanisms, scale: f64) -> RunReport {
    let profile = BenchProfile::by_name(name).expect("benchmark exists");
    let mut wl = Skeleton::scaled(profile, threads, scale);
    let cfg = RunConfig::vanilla(cores)
        .with_machine(MachineSpec::PaperN(cores))
        .with_mech(mech)
        .with_seed(12345);
    run_labelled(&mut wl, &cfg, name)
}

fn slowdown(name: &str, scale: f64) -> f64 {
    let base = run_skel(name, 8, 8, Mechanisms::vanilla(), scale);
    let over = run_skel(name, 32, 8, Mechanisms::vanilla(), scale);
    over.normalized_to(&base)
}

#[test]
fn neutral_group_is_unaffected() {
    for name in ["blackscholes", "swaptions", "ep", "barnes"] {
        let s = slowdown(name, 0.25);
        assert!(
            (0.75..=1.15).contains(&s),
            "{name} should be ~1.0, got {s:.2}"
        );
    }
}

#[test]
fn benefit_group_speeds_up() {
    // The paper's group 2 sits at 0.88-0.94 under vanilla oversubscription.
    for name in ["bodytrack", "water"] {
        let s = slowdown(name, 0.2);
        assert!(s < 1.0, "{name} should benefit, got {s:.2}");
    }
    // facesim's frequent condvar rounds almost cancel its memory benefit
    // in our model; it must at least break even-ish.
    let s = slowdown("facesim", 0.2);
    assert!(s < 1.15, "facesim should be near break-even, got {s:.2}");
}

#[test]
fn blocking_group_suffers_and_vb_recovers() {
    for name in ["streamcluster", "cg", "ua"] {
        let s = slowdown(name, 0.15);
        assert!(
            (1.10..=4.0).contains(&s),
            "{name} vanilla oversub slowdown {s:.2} out of the paper's range"
        );
        let base = run_skel(name, 8, 8, Mechanisms::vanilla(), 0.15);
        let opt = run_skel(name, 32, 8, Mechanisms::optimized(), 0.15);
        let rec = opt.normalized_to(&base);
        assert!(
            rec < s && rec <= 1.35,
            "{name}: optimized {rec:.2} should be close to baseline (vanilla was {s:.2})"
        );
    }
}

#[test]
fn custom_spin_group_collapses_and_bwd_recovers() {
    for name in ["lu", "volrend"] {
        let base = run_skel(name, 8, 8, Mechanisms::vanilla(), 0.06);
        let over = run_skel(name, 32, 8, Mechanisms::vanilla(), 0.06);
        let s = over.normalized_to(&base);
        assert!(
            s > 4.0,
            "{name} should collapse under oversubscription, got {s:.2}"
        );
        let opt = run_skel(name, 32, 8, Mechanisms::optimized(), 0.06);
        let rec = opt.normalized_to(&base);
        // BWD recovers the bulk of the collapse. A residual overhead
        // remains (the paper also reports it growing with the
        // oversubscription ratio): each spin episode burns up to ~1.5
        // detection windows before the deschedule.
        assert!(
            rec < s / 2.0 && rec < 3.0,
            "{name}: BWD should recover (vanilla {s:.2}, optimized {rec:.2})"
        );
    }
}

#[test]
fn vb_cuts_migrations_table1_style() {
    let name = "streamcluster";
    let over = run_skel(name, 32, 8, Mechanisms::vanilla(), 0.15);
    let opt = run_skel(name, 32, 8, Mechanisms::optimized(), 0.15);
    assert!(
        over.tasks.migrations() > 10 * opt.tasks.migrations().max(1),
        "vanilla migrations {} vs optimized {}",
        over.tasks.migrations(),
        opt.tasks.migrations()
    );
    // Utilization improves (Table 1's CPU utilization column).
    assert!(opt.cpu_utilization_pct() >= over.cpu_utilization_pct());
}

fn run_memcached(workers: usize, cores: usize, mech: Mechanisms) -> RunReport {
    let mut wl = Memcached::paper(workers, cores, 300_000.0);
    let cpus = wl.total_cpus();
    let cfg = RunConfig::vanilla(cpus)
        .with_mech(mech)
        .with_seed(99)
        .with_max_time(SimTime::from_millis(800));
    run_labelled(&mut wl, &cfg, "memcached")
}

#[test]
fn memcached_tail_latency_shape() {
    // 4 cores: 4 workers (baseline) vs 16 workers (oversubscribed).
    let base = run_memcached(4, 4, Mechanisms::vanilla());
    let over = run_memcached(16, 4, Mechanisms::vanilla());
    let opt = run_memcached(16, 4, Mechanisms::optimized());
    assert!(base.completed_ops > 10_000, "baseline must serve load");
    assert!(over.completed_ops > 10_000);
    let p99_base = base.latency.percentile(99.0);
    let p99_over = over.latency.percentile(99.0);
    let p99_opt = opt.latency.percentile(99.0);
    assert!(
        p99_over > 2 * p99_base,
        "oversubscription should inflate p99: base {p99_base} vs over {p99_over}"
    );
    assert!(
        p99_opt < p99_over,
        "VB should cut the tail: over {p99_over} vs opt {p99_opt}"
    );
}

#[test]
fn barrier_stress_with_tiny_work_terminates() {
    // Regression: repeated idle-pull migrations between queues with
    // lagging min_vruntimes used to compound vruntime re-bases until
    // vruntimes overflowed into the VB tail region, stranding runnable
    // tasks (observed with 32 threads of 2 µs barrier rounds on 8 cores).
    use oversub::workloads::micro::{Primitive, PrimitiveStress};
    let mut wl = PrimitiveStress::new(32, 2_500, Primitive::Barrier, 2_000);
    let cfg = RunConfig::vanilla(8)
        .with_machine(MachineSpec::PaperN(8))
        .with_seed(42);
    let r = run_labelled(&mut wl, &cfg, "barrier-stress");
    assert!(
        r.makespan_ns < 5_000_000_000,
        "stress run stalled: {} ns",
        r.makespan_ns
    );
}
