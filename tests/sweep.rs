//! End-to-end guarantees of the parallel sweep harness:
//!
//! 1. **Golden byte-identity** — real experiment drivers rendered at
//!    `jobs = 1` (the exact sequential path) and `jobs = 4` from a cold
//!    cache each time must produce identical bytes.
//! 2. **Run-cache replay** — re-rendering the same drivers is served from
//!    the memoized cache and still produces identical bytes.
//! 3. **Uncached arms** — custom-mechanism configs (ineligible for the
//!    cache) still merge in submission order at any jobs count.
//! 4. **Property** — for arbitrary workload parameters, a cached replay
//!    equals a fresh engine run, at any jobs count.
//!
//! The jobs knob, cache, and counters are process-global, so everything
//! that flips `set_jobs` or calls `reset` lives in ONE `#[test]`; the
//! property test only adds cache entries, which no assertion here is
//! sensitive to.

use oversub::experiments::{self as exp, ExpOpts};
use oversub::mechanism::Mechanism;
use oversub::sweep::{self, Sweep};
use oversub::workload::Workload;
use oversub::workloads::micro::ComputeYield;
use oversub::{run_labelled, MechCounters, RunConfig};
use proptest::prelude::*;

/// A small but shape-diverse driver subset: micro arms (fig 2), spinlock
/// probes (table 2), and a config-mutating ablation.
fn render_drivers(o: ExpOpts) -> String {
    let mut out = String::new();
    out.push_str(&exp::fig02_direct_cost(o).render());
    out.push_str(&exp::table2_bwd_tp(o).render());
    out.push_str(&exp::ablation_wakeup_cost(o).render());
    out
}

#[test]
fn parallel_sweep_is_byte_identical_and_caches() {
    let o = ExpOpts {
        scale: 0.03,
        seed: 19,
    };

    // (1) Golden: jobs=1 vs jobs=4, cold cache for each pass.
    sweep::reset();
    sweep::set_jobs(1);
    let seq = render_drivers(o);
    sweep::reset();
    sweep::set_jobs(4);
    let par = render_drivers(o);
    assert_eq!(
        seq, par,
        "driver output differs between jobs=1 and jobs=4 — the pool's \
         submission-order merge is broken"
    );

    // (2) Replay: same drivers again, now served from the warm cache
    // (table 2 alone holds 10 eligible arms). Bytes must not move.
    let before = sweep::stats();
    let replay = render_drivers(o);
    let after = sweep::stats();
    sweep::set_jobs(0);
    assert_eq!(replay, par, "cache replay changed driver output");
    assert!(
        after.cache_hits >= before.cache_hits + 10,
        "expected >= 10 cache hits on replay, went {} -> {}",
        before.cache_hits,
        after.cache_hits
    );

    // (3) Uncached arms (custom mechanism => no canonical config form):
    // must execute every time and still merge in submission order.
    struct Nop;
    impl Mechanism for Nop {
        fn name(&self) -> &'static str {
            "nop"
        }
        fn counters(&self) -> MechCounters {
            MechCounters::named("nop")
        }
        fn as_any(&self) -> &dyn std::any::Any {
            self
        }
    }
    let submit_all = |s: &mut Sweep| {
        for i in 1..=4u64 {
            let cfg = RunConfig::vanilla(2)
                .with_seed(23)
                .with_mechanism(|| Box::new(Nop));
            s.add(format!("uncached/{i}"), cfg, move || {
                Box::new(ComputeYield::fig2a(2, i * 1_500_000)) as Box<dyn Workload>
            });
        }
    };
    let mut s1 = Sweep::new();
    submit_all(&mut s1);
    let mut s4 = Sweep::new();
    submit_all(&mut s4);
    let r1 = s1.run_with_jobs(1);
    let r4 = s4.run_with_jobs(4);
    assert_eq!(r1, r4, "uncached arms differ between jobs=1 and jobs=4");
    assert_eq!(r1[2].label, "uncached/3");
}

/// Corrupt run-cache entries are detected on hit, discarded with a
/// warning, and transparently recovered by re-running the arm. Uses its
/// own seed so its cache keys never collide with the other tests, and
/// never touches the global jobs knob or counters.
#[test]
fn corrupt_cache_entries_recover_transparently() {
    let cfg = RunConfig::vanilla(2).with_seed(777_001);
    let mk = || Box::new(ComputeYield::fig2a(3, 2_000_000)) as Box<dyn Workload>;
    let key = sweep::cache_key_for(&cfg, &*mk()).expect("arm is cache-eligible");

    // Prime the cache with the genuine result.
    let mut s = Sweep::new();
    s.add("arm", cfg.clone(), mk);
    let fresh = s.run_with_jobs(1).pop().expect("one report");
    assert!(sweep::cache_contains(&key));

    // Unparsable garbage, truncated JSON, and a parseable report whose
    // digest count contradicts completed_ops must all be treated as
    // misses — served results stay bit-identical to the fresh run.
    let tampered = fresh
        .to_json()
        .replace("\"completed_ops\":0", "\"completed_ops\":5");
    assert_ne!(tampered, fresh.to_json(), "tamper target missing");
    for corrupt in [
        "{definitely not json".to_string(),
        fresh.to_json()[..fresh.to_json().len() / 2].to_string(),
        tampered,
    ] {
        sweep::inject_cache_entry(key.clone(), corrupt);
        let mut s = Sweep::new();
        s.add("arm", cfg.clone(), mk);
        let replay = s.run_with_jobs(1).pop().expect("one report");
        assert_eq!(
            replay, fresh,
            "recovery from a corrupt cache entry changed the result"
        );
        // The re-run re-publishes a valid entry.
        assert!(sweep::cache_contains(&key));
        let mut s = Sweep::new();
        s.add("arm", cfg.clone(), mk);
        assert_eq!(s.run_with_jobs(1).pop().expect("one report"), fresh);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Arbitrary (threads, work, seed, jobs): the first sweep execution
    /// and a cache-served replay must both equal a fresh direct engine
    /// run, bit for bit.
    #[test]
    fn cache_replay_equals_fresh_run(
        n in 1usize..6,
        work_ns in 1_000_000u64..8_000_000,
        seed in 0u64..1_000,
        jobs in 1usize..5,
    ) {
        let cfg = RunConfig::vanilla(2).with_seed(seed);
        let mk = move || Box::new(ComputeYield::fig2a(n, work_ns)) as Box<dyn Workload>;

        let fresh = run_labelled(&mut *mk(), &cfg, "arm");

        let mut s1 = Sweep::new();
        s1.add("arm", cfg.clone(), mk);
        let first = s1.run_with_jobs(jobs).pop().expect("one report");

        let mut s2 = Sweep::new();
        s2.add("arm", cfg, mk);
        let second = s2.run_with_jobs(jobs).pop().expect("one report");

        prop_assert_eq!(&first, &fresh, "first sweep run differs from direct run");
        prop_assert_eq!(&second, &fresh, "cache replay differs from direct run");
    }
}
