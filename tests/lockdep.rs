//! Lock-order and deadlock analysis (lockdep) integration tests.
//!
//! Three guarantees are pinned here:
//!
//! 1. **ABBA detection is deterministic** — the canonical two-mutex
//!    order-inversion workload reports both a `lock-order-inversion` and a
//!    `deadlock-cycle` diagnostic naming both locks, identically across
//!    repeated runs.
//! 2. **Lockdep is pure observation** — enabling it on golden-style
//!    configurations changes nothing but the diagnostics list: with
//!    diagnostics cleared, the reports are byte-identical through the
//!    canonical JSON.
//! 3. **No false positives** — workloads that acquire locks in a
//!    consistent order never trip either diagnostic, across arbitrary
//!    seeds and thread counts.

use oversub::simcore::SimTime;
use oversub::workloads::memcached::Memcached;
use oversub::workloads::micro::{AbbaDeadlock, Primitive, PrimitiveStress};
use oversub::workloads::pipeline::{SpinPipeline, WaitFlavor};
use oversub::{run, MachineSpec, Mechanisms, RunConfig, RunReport, WatchdogParams};
use proptest::prelude::*;

/// Watchdog tuned so the deadlocked ABBA pair trips `no-progress`
/// quickly, without the park-timeout rescue racing ahead of it.
fn abba_watchdog() -> WatchdogParams {
    WatchdogParams {
        hang_timeout_ns: 5_000_000,
        ..WatchdogParams::default()
    }
}

fn abba_cfg() -> RunConfig {
    RunConfig::vanilla(2)
        .with_machine(MachineSpec::PaperN(2))
        .with_seed(1)
        .with_max_time(SimTime::from_millis(50))
        .with_lockdep()
        .with_watchdog(abba_watchdog())
        .with_max_events(5_000_000)
}

fn kinds(report: &RunReport) -> Vec<&str> {
    report.diagnostics.iter().map(|d| d.kind.as_str()).collect()
}

/// A named workload case: label, CPU count, and a fresh-instance factory.
type WorkloadCase<'a> = (
    &'a str,
    usize,
    Box<dyn Fn() -> Box<dyn oversub::workload::Workload>>,
);

/// The canonical ABBA workload must produce both lockdep diagnostics, each
/// naming both mutexes, plus a no-progress report attributed via the
/// wait-for graph.
#[test]
fn abba_reports_inversion_and_deadlock_cycle() {
    let cfg = abba_cfg();
    let report = run(&mut AbbaDeadlock::default(), &cfg);

    let inversion = report
        .diagnostics
        .iter()
        .find(|d| d.kind == "lock-order-inversion")
        .unwrap_or_else(|| {
            panic!(
                "no lock-order-inversion diagnostic; got {:?}",
                kinds(&report)
            )
        });
    assert!(
        inversion.detail.contains("mutex 0") && inversion.detail.contains("mutex 1"),
        "inversion must name both locks: {}",
        inversion.detail
    );
    assert!(
        inversion.detail.contains("acquisition-order cycle"),
        "inversion must spell out the cycle: {}",
        inversion.detail
    );

    let deadlock = report
        .diagnostics
        .iter()
        .find(|d| d.kind == "deadlock-cycle")
        .unwrap_or_else(|| panic!("no deadlock-cycle diagnostic; got {:?}", kinds(&report)));
    assert!(
        deadlock.detail.contains("mutex 0") && deadlock.detail.contains("mutex 1"),
        "deadlock cycle must name both locks: {}",
        deadlock.detail
    );
    assert!(
        deadlock.detail.contains("waits on"),
        "deadlock cycle must show the wait-for edges: {}",
        deadlock.detail
    );

    // The watchdog's no-progress report is attributed: the wait-for
    // summary names who is stuck on what.
    let hang = report
        .diagnostics
        .iter()
        .find(|d| d.kind == "no-progress")
        .unwrap_or_else(|| {
            panic!(
                "deadlocked run produced no no-progress; got {:?}",
                kinds(&report)
            )
        });
    assert!(
        hang.detail.contains("wait-for:"),
        "no-progress must carry lockdep attribution: {}",
        hang.detail
    );
}

/// The ABBA analysis is bit-deterministic: two identical runs serialize to
/// the same canonical JSON, diagnostics included.
#[test]
fn abba_analysis_is_deterministic() {
    let cfg = abba_cfg();
    let a = run(&mut AbbaDeadlock::default(), &cfg).to_json();
    let b = run(&mut AbbaDeadlock::default(), &cfg).to_json();
    assert_eq!(a, b, "lockdep-enabled ABBA run is not reproducible");
}

/// Golden bit-identity: lockdep on vs off over golden-style configs must
/// agree on every byte of the report once the (new) diagnostics are set
/// aside. Lockdep must never perturb scheduling, timing, or counters.
#[test]
fn lockdep_is_observation_only_on_golden_configs() {
    let mc_cpus = Memcached::paper(16, 8, 40_000.0).total_cpus();
    let cases: Vec<WorkloadCase> = vec![
        (
            "pipeline",
            8,
            Box::new(|| Box::new(SpinPipeline::new(12, 40, WaitFlavor::Flags))),
        ),
        (
            "memcached",
            mc_cpus,
            Box::new(|| Box::new(Memcached::paper(16, 8, 40_000.0))),
        ),
        (
            "mutex-stress",
            8,
            Box::new(|| Box::new(PrimitiveStress::new(12, 200, Primitive::Mutex, 2_000))),
        ),
    ];
    for (name, cpus, mk) in &cases {
        let cfg = RunConfig::vanilla(*cpus)
            .with_machine(MachineSpec::PaperN(*cpus))
            .with_mech(Mechanisms::optimized())
            .with_seed(42)
            .with_max_time(SimTime::from_millis(150));
        let mut plain = run(&mut *mk(), &cfg);
        let mut watched = run(&mut *mk(), &cfg.clone().with_lockdep());
        plain.diagnostics.clear();
        watched.diagnostics.clear();
        assert_eq!(
            plain.to_json(),
            watched.to_json(),
            "{name}: lockdep perturbed the run beyond diagnostics"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Workloads whose locks are acquired in a consistent order must never
    /// trip either lockdep diagnostic, for any seed or thread count.
    #[test]
    fn ordered_acquisition_never_reports(
        seed in any::<u64>(),
        threads in 2usize..16,
        rounds in 20usize..120,
        prim in prop_oneof![
            Just(Primitive::Mutex),
            Just(Primitive::Cond),
            Just(Primitive::Barrier),
        ],
    ) {
        let cfg = RunConfig::vanilla(4)
            .with_machine(MachineSpec::PaperN(4))
            .with_mech(Mechanisms::optimized())
            .with_seed(seed)
            .with_max_time(SimTime::from_millis(80))
            .with_lockdep()
            .with_max_events(5_000_000);
        let mut wl = PrimitiveStress::new(threads, rounds, prim, 1_500);
        let report = run(&mut wl, &cfg);
        for d in &report.diagnostics {
            prop_assert!(
                d.kind != "lock-order-inversion" && d.kind != "deadlock-cycle",
                "false positive on ordered workload: {} — {}", d.kind, d.detail
            );
        }
    }
}
