//! Byte-identity of the intra-run sharded engine.
//!
//! The sharded engine (per-core-group tick queues advanced concurrently
//! under conservative lookahead windows) must produce **bit-identical
//! reports** to the sequential engine at every shard count, on every
//! workload family the tier-1 suite covers — including runs where
//! sharding intentionally disarms (fault plans, schedule salt) and runs
//! with observation-only instrumentation armed (race detector, lockdep,
//! watchdog). Reports are compared through their canonical JSON
//! serialization, which is integer-exact; the processed-event count must
//! match too, since window folds count each executed tick exactly as the
//! sequential pop loop would.

use oversub::simcore::SimTime;
use oversub::workload::Workload;
use oversub::workloads::admission::{AdmissionPolicy, OverloadParams, RetryPolicy};
use oversub::workloads::memcached::Memcached;
use oversub::workloads::pipeline::{SpinPipeline, WaitFlavor};
use oversub::workloads::skeletons::{BenchProfile, Skeleton};
use oversub::workloads::webserving::WebServing;
use oversub::{
    run_counted, run_phase_profiled, ElasticEvent, FaultPlan, MachineSpec, Mechanisms, RunConfig,
    WatchdogParams,
};
use proptest::prelude::*;

/// Run one workload at shards = 1, 2, 4 and assert byte-identical report
/// JSON and identical event counts across all three.
fn assert_shard_identical(mut mk: impl FnMut() -> Box<dyn Workload>, cfg: &RunConfig, label: &str) {
    let (base_report, base_events) = {
        let mut wl = mk();
        run_counted(&mut *wl, &cfg.clone().with_shards(1), label)
    };
    let base = base_report.to_json();
    for n in [2usize, 4] {
        let (report, events) = {
            let mut wl = mk();
            run_counted(&mut *wl, &cfg.clone().with_shards(n), label)
        };
        assert_eq!(
            base,
            report.to_json(),
            "{label}: shards={n} diverged from the sequential engine"
        );
        assert_eq!(
            base_events, events,
            "{label}: shards={n} processed a different number of events"
        );
    }
}

#[test]
fn memcached_is_bit_identical_across_shard_counts() {
    let cpus = Memcached::paper(16, 8, 40_000.0).total_cpus();
    let cfg = RunConfig::vanilla(cpus)
        .with_mech(Mechanisms::optimized())
        .with_seed(42)
        .with_max_time(SimTime::from_millis(80));
    assert_shard_identical(
        || Box::new(Memcached::paper(16, 8, 40_000.0)),
        &cfg,
        "shard/memcached",
    );
}

#[test]
fn idle_heavy_machine_parallelizes_and_is_identical() {
    // 8 threads on 64 CPUs: the event mix is dominated by periodic ticks
    // on idle cores — the exact population lookahead windows absorb. This
    // is both the byte-identity check on the window machinery's busiest
    // configuration and the proof that windows actually open (a sharded
    // run that never parallelizes would pass every identity test
    // vacuously).
    let profile = BenchProfile::by_name("streamcluster").expect("known benchmark");
    let cfg = RunConfig::vanilla(64)
        .with_machine(MachineSpec::PaperN(64))
        .with_mech(Mechanisms::optimized())
        .with_seed(11)
        .with_max_time(SimTime::from_millis(120));
    assert_shard_identical(
        || Box::new(Skeleton::scaled(profile, 8, 0.60).with_salt(11)),
        &cfg,
        "shard/idle-heavy",
    );
    let mut wl = Skeleton::scaled(profile, 8, 0.60).with_salt(11);
    let (_, events, prof) = run_phase_profiled(
        &mut wl,
        &cfg.clone().with_shards(4),
        "shard/idle-heavy-prof",
    );
    assert!(
        prof.window_events > 0,
        "no events executed inside lookahead windows on an idle-heavy machine"
    );
    assert!(
        prof.window_events <= events,
        "window events ({}) exceed total events ({events})",
        prof.window_events
    );
}

#[test]
fn pipeline_is_bit_identical_across_shard_counts() {
    for (mech, name) in [
        (Mechanisms::vanilla(), "vanilla"),
        (Mechanisms::optimized(), "optimized"),
    ] {
        let cfg = RunConfig::vanilla(8)
            .with_machine(MachineSpec::PaperN(8))
            .with_mech(mech)
            .with_seed(5);
        assert_shard_identical(
            || Box::new(SpinPipeline::new(16, 30, WaitFlavor::Flags)),
            &cfg,
            &format!("shard/pipeline-{name}"),
        );
    }
}

#[test]
fn web_serving_with_elasticity_is_bit_identical() {
    // Elastic core-count changes broadcast across every shard (the
    // cross-shard mailbox's `Elastic` entries) and flip CPUs offline mid
    // run, changing how ticks classify between windows.
    let cpus = WebServing::new(24, 8, 50_000.0).total_cpus();
    let mut cfg = RunConfig::vanilla(cpus)
        .with_mech(Mechanisms::optimized())
        .with_seed(11)
        .with_max_time(SimTime::from_millis(80));
    cfg.elastic = vec![
        ElasticEvent {
            at: SimTime::from_millis(20),
            cores: 4,
        },
        ElasticEvent {
            at: SimTime::from_millis(50),
            cores: 8,
        },
    ];
    assert_shard_identical(
        || Box::new(WebServing::new(24, 8, 50_000.0)),
        &cfg,
        "shard/web-elastic",
    );
}

#[test]
fn chaos_runs_disarm_sharding_and_stay_identical() {
    // A fault plan disarms sharding (injected timer jitter breaks the
    // strict-cadence invariant the shard queues rely on); a shards=4
    // request must silently fall back to the sequential engine and
    // reproduce it exactly.
    let cfg = RunConfig::vanilla(8)
        .with_machine(MachineSpec::PaperN(8))
        .with_mech(Mechanisms::optimized())
        .with_seed(17)
        .with_max_time(SimTime::from_millis(60))
        .with_faults(FaultPlan::default().lost_wakeups(0.05).timer_jitter(2_000))
        .with_watchdog(WatchdogParams::default());
    assert_shard_identical(
        || Box::new(SpinPipeline::new(12, 24, WaitFlavor::Flags)),
        &cfg,
        "shard/chaos-disarmed",
    );
}

#[test]
fn salted_runs_disarm_sharding_and_stay_identical() {
    // Non-zero schedule salt permutes equal-time pops — the byte-pinned
    // FIFO order sharding's equivalence proof assumes is gone, so the
    // engine must fall back to sequential execution.
    let cfg = RunConfig::vanilla(8)
        .with_machine(MachineSpec::PaperN(8))
        .with_mech(Mechanisms::optimized())
        .with_seed(19)
        .with_schedule_salt(3);
    assert_shard_identical(
        || Box::new(SpinPipeline::new(12, 20, WaitFlavor::Flags)),
        &cfg,
        "shard/salted-disarmed",
    );
}

#[test]
fn race_detector_armed_runs_are_bit_identical() {
    // The happens-before race detector stays armed under sharding: its
    // vector clocks advance only at sync boundaries, which all execute
    // on the coordinator between windows.
    let cfg = RunConfig::vanilla(8)
        .with_machine(MachineSpec::PaperN(8))
        .with_mech(Mechanisms::optimized())
        .with_seed(23)
        .with_race_detector();
    assert_shard_identical(
        || Box::new(SpinPipeline::new(12, 24, WaitFlavor::Flags)),
        &cfg,
        "shard/race-armed",
    );
}

#[test]
fn lockdep_armed_runs_are_bit_identical() {
    let cfg = RunConfig::vanilla(8)
        .with_machine(MachineSpec::PaperN(8))
        .with_mech(Mechanisms::optimized())
        .with_seed(29)
        .with_lockdep();
    assert_shard_identical(
        || {
            Box::new(SpinPipeline::new(
                12,
                20,
                WaitFlavor::SpinLock(oversub::locks::SpinPolicy::ttas()),
            ))
        },
        &cfg,
        "shard/lockdep-armed",
    );
}

#[test]
fn overload_runs_are_bit_identical() {
    // Deadlines, CoDel shedding, and retries ride the coordinator's
    // event stream; windows only ever absorb quiet ticks around them.
    let ov = OverloadParams::disabled()
        .with_deadline_ns(3_000_000)
        .with_admission(AdmissionPolicy::CoDel {
            target_ns: 300_000,
            interval_ns: 500_000,
        })
        .with_retry(RetryPolicy::default());
    let cpus = Memcached::paper(12, 6, 30_000.0).total_cpus();
    let cfg = RunConfig::vanilla(cpus)
        .with_mech(Mechanisms::optimized())
        .with_seed(31)
        .with_max_time(SimTime::from_millis(60))
        .with_overload(ov);
    assert_shard_identical(
        || Box::new(Memcached::paper(12, 6, 30_000.0)),
        &cfg,
        "shard/overload",
    );
}

#[test]
fn watchdog_armed_runs_are_bit_identical() {
    // A fault-free watchdog keeps sharding armed: the sweep is a
    // coordinator-queue cadenced event and forms a window horizon.
    let cfg = RunConfig::vanilla(16)
        .with_machine(MachineSpec::PaperN(16))
        .with_mech(Mechanisms::optimized())
        .with_seed(37)
        .with_max_time(SimTime::from_millis(60))
        .with_watchdog(WatchdogParams::default());
    assert_shard_identical(
        || Box::new(SpinPipeline::new(8, 20, WaitFlavor::Flags)),
        &cfg,
        "shard/watchdog-armed",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized cross-shard schedules (wakes and migrations landing on
    /// arbitrary core groups, via random thread/core mixes and seeds)
    /// never violate the lookahead bound: the sharded run replays the
    /// sequential engine — the oracle — byte for byte at any shard count.
    #[test]
    fn random_configs_replay_the_sequential_oracle(
        threads in 4usize..16,
        cores in 4usize..32,
        shards in 2usize..6,
        scale in 0.05f64..0.5,
        seed in 0u64..1_000_000,
    ) {
        let profile = BenchProfile::by_name("fluidanimate").expect("known benchmark");
        let cfg = RunConfig::vanilla(cores)
            .with_machine(MachineSpec::PaperN(cores))
            .with_mech(Mechanisms::optimized())
            .with_seed(seed)
            .with_max_time(SimTime::from_millis(40));
        let mut a = Skeleton::scaled(profile, threads, scale).with_salt(seed);
        let (ra, ea) = run_counted(&mut a, &cfg.clone().with_shards(1), "shard/prop");
        let mut b = Skeleton::scaled(profile, threads, scale).with_salt(seed);
        let (rb, eb) = run_counted(&mut b, &cfg.clone().with_shards(shards), "shard/prop");
        prop_assert_eq!(ra.to_json(), rb.to_json(), "shards={} diverged", shards);
        prop_assert_eq!(ea, eb, "event counts diverged at shards={}", shards);
    }
}
